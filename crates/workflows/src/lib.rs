//! # spmap-workflows — synthetic scientific-workflow generators
//!
//! The paper's real-world evaluation (§IV-D) uses the fixed benchmark set
//! of Sukhoroslov & Gorokhovskii (ref. 29), built from WfCommons
//! (ref. 26) recipes of nine applications.  The instance files are not
//! shipped with the paper, so this crate *recreates the DAG shapes* of
//! the nine families with parameterized, seeded generators (substitution
//! notes in DESIGN.md §4):
//!
//! | family        | structure                                             |
//! |---------------|-------------------------------------------------------|
//! | `1000genome`  | per-chromosome fan-out → merge → analysis fan-out     |
//! | `blast`       | split → wide map → two-stage reduce                   |
//! | `bwa`         | index + wide map → concat (transfer-dominated)        |
//! | `cycles`      | parameter-sweep chains → gather → plots               |
//! | `epigenomics` | many parallel 4-stage chains → merge → index → pileup |
//! | `montage`     | projections → diff lattice → model → background → add |
//! | `seismology`  | flat deconvolution fan-in (transfer-dominated)        |
//! | `soykb`       | per-sample 6-chains → haplotype callers → deep tail   |
//! | `srasearch`   | per-accession 3-chains → paste + cat                  |
//!
//! Task complexities and data volumes are family-specific (recreating the
//! published profiles in magnitude); parallelizability and streamability
//! are augmented "analogously to §IV-B" via [`augment_ps`].  `bwa` and
//! `seismology` are calibrated transfer-dominated, reproducing the
//! paper's observation that no algorithm accelerates them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spmap_graph::dist::lognormal;
use spmap_graph::{GraphBuilder, NodeId, Task, TaskGraph};

mod recipes;

pub use recipes::*;

/// The nine workflow families of the paper's Table I (plus the two the
/// paper reports as not accelerable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// 1000-genomes population analysis.
    Genome1000,
    /// BLAST sequence search.
    Blast,
    /// BWA read alignment.
    Bwa,
    /// Cycles agro-ecosystem parameter sweep.
    Cycles,
    /// USC epigenome mapping pipeline.
    Epigenomics,
    /// Montage astronomy mosaics.
    Montage,
    /// Seismic deconvolution.
    Seismology,
    /// SoyKB genomics knowledge base.
    Soykb,
    /// SRA search.
    Srasearch,
}

impl Family {
    /// All nine families, Table-I order.
    pub fn all() -> [Family; 9] {
        [
            Family::Genome1000,
            Family::Blast,
            Family::Bwa,
            Family::Cycles,
            Family::Epigenomics,
            Family::Montage,
            Family::Seismology,
            Family::Soykb,
            Family::Srasearch,
        ]
    }

    /// Lower-case family name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Genome1000 => "1000genome",
            Family::Blast => "blast",
            Family::Bwa => "bwa",
            Family::Cycles => "cycles",
            Family::Epigenomics => "epigenomics",
            Family::Montage => "montage",
            Family::Seismology => "seismology",
            Family::Soykb => "soykb",
            Family::Srasearch => "srasearch",
        }
    }

    /// Generate an instance with roughly `tasks` task nodes.
    pub fn generate(&self, tasks: usize, seed: u64) -> TaskGraph {
        match self {
            Family::Genome1000 => genome1000(tasks, seed),
            Family::Blast => blast(tasks, seed),
            Family::Bwa => bwa(tasks, seed),
            Family::Cycles => cycles(tasks, seed),
            Family::Epigenomics => epigenomics(tasks, seed),
            Family::Montage => montage(tasks, seed),
            Family::Seismology => seismology(tasks, seed),
            Family::Soykb => soykb(tasks, seed),
            Family::Srasearch => srasearch(tasks, seed),
        }
    }
}

/// Helper used by the recipes: create a task with type-specific magnitude
/// and a deterministic lognormal jitter.
pub(crate) fn typed_task(rng: &mut StdRng, name: &str, complexity: f64, data_mb: f64) -> Task {
    let jitter = lognormal(rng, 0.0, 0.25);
    Task {
        name: name.to_string(),
        complexity: complexity * jitter,
        data_points: data_mb * 1e6 / 8.0,
        parallelizability: 0.0, // set by augment_ps
        streamability: 1.0,     // set by augment_ps
        area: 0.0,              // set by augment_ps
    }
}

/// Augment parallelizability and streamability "analogously to §IV-B"
/// (paper §IV-D): 50 % perfectly parallelizable else uniform,
/// streamability lognormal(2, 0.5), area proportional to complexity.
/// Task complexities and data sizes are left untouched.
pub fn augment_ps(g: &mut TaskGraph, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for v in 0..g.node_count() {
        let t = g.task_mut(NodeId(v as u32));
        t.parallelizability = if rng.gen_bool(0.5) { 1.0 } else { rng.gen() };
        t.streamability = lognormal(&mut rng, 2.0, 0.5);
        t.area = 8.0 * t.complexity;
    }
}

/// One instance of the benchmark set.
pub struct BenchInstance {
    /// Workflow family.
    pub family: Family,
    /// Instance label, e.g. `montage-260`.
    pub name: String,
    /// The (already `augment_ps`-ed) task graph.
    pub graph: TaskGraph,
}

/// Size tier of a benchmark instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SizeTier {
    /// ~30–80 tasks.
    Small,
    /// ~100–300 tasks.
    Medium,
    /// ~400–900 tasks.
    Large,
    /// the paper's maxima (montage 1312, epigenomics 1695).
    Huge,
}

/// Target task counts per family and tier, spanning the ranges of the
/// benchmark set in ref. 29.
pub fn tier_sizes(family: Family, tier: SizeTier) -> usize {
    use Family::*;
    use SizeTier::*;
    match (family, tier) {
        (Montage, Small) => 60,
        (Montage, Medium) => 260,
        (Montage, Large) => 660,
        (Montage, Huge) => 1312,
        (Epigenomics, Small) => 47,
        (Epigenomics, Medium) => 247,
        (Epigenomics, Large) => 679,
        (Epigenomics, Huge) => 1695,
        (_, Small) => 40,
        (_, Medium) => 150,
        (_, Large) => 450,
        (_, Huge) => 900,
    }
}

/// Build a benchmark set in the spirit of ref. 29: `seeds_per_size`
/// seeded instances per family for every tier up to `max_tier`.
pub fn benchmark_set(max_tier: SizeTier, seeds_per_size: usize, seed: u64) -> Vec<BenchInstance> {
    let tiers = [
        SizeTier::Small,
        SizeTier::Medium,
        SizeTier::Large,
        SizeTier::Huge,
    ];
    let mut out = Vec::new();
    for family in Family::all() {
        for &tier in tiers.iter().filter(|&&t| t <= max_tier) {
            let tasks = tier_sizes(family, tier);
            for k in 0..seeds_per_size {
                let inst_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((tasks as u64) << 8)
                    .wrapping_add(k as u64);
                let mut graph = family.generate(tasks, inst_seed);
                augment_ps(&mut graph, inst_seed ^ 0xabcd);
                out.push(BenchInstance {
                    family,
                    name: format!("{}-{}-{}", family.name(), tasks, k),
                    graph,
                });
            }
        }
    }
    out
}

/// Convenience for recipes: a builder pre-loaded with nothing.
pub(crate) fn builder() -> GraphBuilder {
    GraphBuilder::new()
}

pub(crate) const MB: f64 = 1e6;

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::ops;

    #[test]
    fn all_families_generate_valid_dags() {
        for family in Family::all() {
            for tasks in [30, 150, 400] {
                let g = family.generate(tasks, 7);
                assert!(
                    ops::topo_order(&g).is_some(),
                    "{} is not a DAG",
                    family.name()
                );
                assert!(
                    ops::is_weakly_connected(&g),
                    "{} not connected",
                    family.name()
                );
                let n = g.node_count();
                assert!(
                    (n as f64) > tasks as f64 * 0.5 && (n as f64) < tasks as f64 * 1.6,
                    "{}: requested {tasks}, got {n}",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for family in Family::all() {
            let a = family.generate(120, 3);
            let b = family.generate(120, 3);
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.edge_count(), b.edge_count());
            let ta: Vec<f64> = a.tasks().iter().map(|t| t.complexity).collect();
            let tb: Vec<f64> = b.tasks().iter().map(|t| t.complexity).collect();
            assert_eq!(ta, tb, "{}", family.name());
        }
    }

    #[test]
    fn paper_maxima_are_reachable() {
        let m = Family::Montage.generate(tier_sizes(Family::Montage, SizeTier::Huge), 1);
        assert!(
            (1200..=1400).contains(&m.node_count()),
            "montage huge: {}",
            m.node_count()
        );
        let e = Family::Epigenomics.generate(tier_sizes(Family::Epigenomics, SizeTier::Huge), 1);
        assert!(
            (1550..=1800).contains(&e.node_count()),
            "epigenomics huge: {}",
            e.node_count()
        );
    }

    #[test]
    fn augment_ps_preserves_complexity() {
        let mut g = Family::Blast.generate(80, 5);
        let before: Vec<f64> = g.tasks().iter().map(|t| t.complexity).collect();
        augment_ps(&mut g, 11);
        let after: Vec<f64> = g.tasks().iter().map(|t| t.complexity).collect();
        assert_eq!(before, after);
        for t in g.tasks() {
            assert!((0.0..=1.0).contains(&t.parallelizability));
            assert!(t.streamability > 0.0);
            assert!((t.area - 8.0 * t.complexity).abs() < 1e-9);
        }
    }

    #[test]
    fn benchmark_set_has_all_families() {
        let set = benchmark_set(SizeTier::Medium, 2, 42);
        assert_eq!(set.len(), 9 * 2 * 2);
        for family in Family::all() {
            assert!(set.iter().any(|i| i.family == family));
        }
        // Names are unique.
        let mut names: Vec<&str> = set.iter().map(|i| i.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), set.len());
    }

    #[test]
    fn transfer_dominated_families_have_low_complexity() {
        // bwa and seismology must be transfer-dominated (paper: no
        // algorithm accelerates them).
        for family in [Family::Bwa, Family::Seismology] {
            let g = family.generate(100, 2);
            let mean_c: f64 =
                g.tasks().iter().map(|t| t.complexity).sum::<f64>() / g.node_count() as f64;
            assert!(mean_c < 2.0, "{} mean complexity {mean_c}", family.name());
        }
        for family in [Family::Epigenomics, Family::Montage] {
            let g = family.generate(100, 2);
            let mean_c: f64 =
                g.tasks().iter().map(|t| t.complexity).sum::<f64>() / g.node_count() as f64;
            assert!(mean_c > 3.0, "{} mean complexity {mean_c}", family.name());
        }
    }

    #[test]
    fn epigenomics_is_mostly_chains() {
        // Long parallel chains: the vast majority of nodes have in- and
        // out-degree 1 (the paper credits the SP decomposition's wins on
        // this set to exactly this shape).
        let g = Family::Epigenomics.generate(400, 9);
        let chainy = g
            .nodes()
            .filter(|&v| g.in_degree(v) == 1 && g.out_degree(v) == 1)
            .count();
        assert!(
            chainy * 10 >= g.node_count() * 7,
            "only {chainy}/{} chain nodes",
            g.node_count()
        );
    }
}

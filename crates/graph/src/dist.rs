//! Minimal distribution sampling on top of `rand`.
//!
//! The paper draws task complexity and streamability from a lognormal
//! distribution (µ = 2, σ = 0.5 — 90 % of values in [3, 17], median ≈ 7.4).
//! Implementing Box-Muller here keeps the dependency set to the approved
//! crates (no `rand_distr`).

use rand::Rng;

/// One standard-normal sample via the Box-Muller transform.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One sample from `Normal(mu, sigma)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * std_normal(rng)
}

/// One sample from `LogNormal(mu, sigma)` (parameters of the underlying
/// normal, matching the paper's "lognormal distribution with µ = 2 and
/// σ = 0.5").
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_matches_paper_quantiles() {
        // Paper §IV-B: with µ=2, σ=0.5, 90 % of values lie in [3, 17] and the
        // median is about 7.4.
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 2.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 7.389).abs() < 0.15, "median {median}");
        let q05 = samples[n / 20];
        let q95 = samples[n - n / 20];
        assert!((2.9..3.5).contains(&q05), "q05 {q05}");
        assert!((15.5..18.0).contains(&q95), "q95 {q95}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(lognormal(&mut rng, 0.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean {mean}");
    }
}

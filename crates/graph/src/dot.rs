//! Graphviz DOT export, used by examples and for debugging decompositions.

use crate::dag::TaskGraph;

/// Render the graph in Graphviz DOT syntax.  Node labels include the task
/// name (falling back to the node id) and the complexity.
pub fn to_dot(g: &TaskGraph) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64 * (g.node_count() + g.edge_count()));
    s.push_str("digraph taskgraph {\n  rankdir=TB;\n  node [shape=box];\n");
    for v in g.nodes() {
        let t = g.task(v);
        let label = if t.name.is_empty() {
            format!("{v}")
        } else {
            t.name.clone()
        };
        writeln!(
            s,
            "  {} [label=\"{}\\nc={:.1} p={:.2} s={:.1}\"];",
            v.0, label, t.complexity, t.parallelizability, t.streamability
        )
        .unwrap();
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        writeln!(
            s,
            "  {} -> {} [label=\"{:.0}MB\"];",
            edge.src.0,
            edge.dst.0,
            edge.bytes / 1e6
        )
        .unwrap();
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::diamond;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = diamond(1e6);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("2 -> 3"));
        assert!(dot.contains("1MB"));
        assert_eq!(dot.matches(" -> ").count(), 4);
    }
}

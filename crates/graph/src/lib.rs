//! # spmap-graph — task-graph core
//!
//! Foundation crate of the `spmap` workspace. It provides:
//!
//! * [`TaskGraph`] — an immutable directed acyclic task graph with per-task
//!   attributes (complexity, parallelizability, streamability, area) and
//!   per-edge data volumes, stored in index-based adjacency lists,
//! * [`GraphBuilder`] — the mutable construction interface,
//! * [`ops`] — topological utilities (orders, layers, reachability,
//!   transitive reduction, critical paths, terminal normalization),
//! * [`gen`] — seeded random generators: series-parallel graphs grown by
//!   series/parallel operations (paper §IV-B), almost-series-parallel
//!   graphs (paper §IV-C), plus deterministic fixtures such as the
//!   paper's Fig. 1 and Fig. 2 graphs,
//! * [`augment()`] — the attribute augmentation scheme of paper §IV-B
//!   (lognormal complexity/streamability, Amdahl-aware parallelizability,
//!   area proportional to complexity, constant inter-task data flow),
//! * [`dist`] — minimal Box-Muller normal/lognormal sampling so that no
//!   dependency beyond `rand` is needed,
//! * [`dot`] — Graphviz export for examples and debugging.
//!
//! The graph type is deliberately *not* generic: tasks in this project
//! always carry the model attributes of the paper's platform model, and a
//! concrete type keeps the hot evaluation loops monomorphic and
//! allocation-free.

pub mod augment;
pub mod dag;
pub mod dist;
pub mod dot;
pub mod gen;
pub mod ops;

pub use augment::{augment, AugmentConfig};
pub use dag::{Edge, EdgeId, GraphBuilder, GraphError, NodeId, Task, TaskGraph};
pub use gen::{almost_sp_graph, random_sp_graph, SpGenConfig};

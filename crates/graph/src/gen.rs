//! Seeded graph generators.
//!
//! * [`random_sp_graph`] — the paper's §IV-B generator: grow a DAG from a
//!   single directed edge by random series/parallel operations (ratio 1:2),
//!   then merge redundant parallel edges.
//! * [`almost_sp_graph`] — the paper's §IV-C generator: a series-parallel
//!   graph plus `k` extra edges directed along a random topological order.
//! * Deterministic fixtures used throughout the workspace: [`chain`],
//!   [`fork_join`], [`diamond`], and the paper's [`fig1_graph`] /
//!   [`fig2_graph`].
//! * [`layered_random`] — a non-SP layered DAG for stress tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dag::{GraphBuilder, NodeId, TaskGraph};

/// Configuration for [`random_sp_graph`] / [`almost_sp_graph`].
#[derive(Clone, Debug)]
pub struct SpGenConfig {
    /// Total number of task nodes to generate (≥ 2, including the two
    /// terminals).
    pub nodes: usize,
    /// Relative weight of series operations (paper: 1).
    pub series_weight: u32,
    /// Relative weight of parallel operations (paper: 2).
    pub parallel_weight: u32,
    /// RNG seed; equal seeds give identical graphs.
    pub seed: u64,
    /// Data volume placed on every edge (paper: 100 MB; attributes are
    /// usually overwritten later by [`crate::augment::augment`]).
    pub edge_bytes: f64,
}

impl SpGenConfig {
    /// Paper defaults with the given node count and seed.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            series_weight: 1,
            parallel_weight: 2,
            seed,
            edge_bytes: 100e6,
        }
    }
}

/// Generate a random two-terminal series-parallel DAG (paper §IV-B).
///
/// Starts from a single directed edge and repeatedly applies a series
/// operation (insert a node on a random edge) or a parallel operation
/// (duplicate a random edge) until the requested node count is reached;
/// duplicate edges are then merged.  The result always has exactly one
/// source and one sink and is series-parallel by construction.
pub fn random_sp_graph(cfg: &SpGenConfig) -> TaskGraph {
    assert!(cfg.nodes >= 2, "a series-parallel graph needs >= 2 nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Edges as endpoint pairs over node ids 0..node_count.
    let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
    let mut node_count: u32 = 2;
    let total_weight = cfg.series_weight + cfg.parallel_weight;
    assert!(
        total_weight > 0,
        "series/parallel weights must not both be 0"
    );
    while (node_count as usize) < cfg.nodes {
        let i = rng.gen_range(0..edges.len());
        if rng.gen_range(0..total_weight) < cfg.series_weight {
            // Series: split edge (u, v) into (u, w), (w, v).
            let (u, v) = edges[i];
            let w = node_count;
            node_count += 1;
            edges[i] = (u, w);
            edges.push((w, v));
        } else {
            // Parallel: duplicate edge (u, v).
            edges.push(edges[i]);
        }
    }
    let mut b = GraphBuilder::with_capacity(node_count as usize, edges.len());
    b.add_default_tasks(node_count as usize);
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v), cfg.edge_bytes)
            .expect("generator produces valid endpoints");
    }
    b.merge_parallel_edges();
    // Merged duplicates summed their bytes; reset to the configured volume
    // (the paper models a *constant* data flow between connected tasks).
    let mut g = b.build().expect("series-parallel construction is acyclic");
    for e in 0..g.edge_count() {
        *g.edge_bytes_mut(crate::dag::EdgeId(e as u32)) = cfg.edge_bytes;
    }
    g
}

/// Generate an *almost* series-parallel DAG (paper §IV-C): a random SP
/// graph with `extra_edges` additional edges, each directed according to a
/// random topological order of the SP graph.  Duplicate edges are skipped,
/// so fewer than `extra_edges` may be inserted on tiny graphs.
pub fn almost_sp_graph(cfg: &SpGenConfig, extra_edges: usize) -> TaskGraph {
    let g = random_sp_graph(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    let order = random_topo_order(&g, &mut rng);
    let mut pos = vec![0usize; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let n = g.node_count();
    let mut b = g.into_builder();
    let mut added = 0;
    let mut attempts = 0;
    let max_attempts = extra_edges.saturating_mul(50) + 100;
    while added < extra_edges && attempts < max_attempts {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if a == c {
            continue;
        }
        let (u, v) = if pos[a] < pos[c] { (a, c) } else { (c, a) };
        let (u, v) = (NodeId(u as u32), NodeId(v as u32));
        if b.has_edge(u, v) {
            continue;
        }
        b.add_edge(u, v, cfg.edge_bytes).expect("endpoints valid");
        added += 1;
    }
    b.build()
        .expect("edges follow a topological order, so acyclic")
}

/// A uniformly seeded random topological order: repeatedly pick a random
/// ready node.  Also used by the evaluator's random schedules.
pub fn random_topo_order<R: Rng + ?Sized>(g: &TaskGraph, rng: &mut R) -> Vec<NodeId> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut ready: Vec<NodeId> = g.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let i = rng.gen_range(0..ready.len());
        let v = ready.swap_remove(i);
        order.push(v);
        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// A simple path `0 -> 1 -> … -> k-1` with `bytes` on every edge.
pub fn chain(k: usize, bytes: f64) -> TaskGraph {
    assert!(k >= 1);
    let mut b = GraphBuilder::with_capacity(k, k.saturating_sub(1));
    b.add_default_tasks(k);
    for i in 1..k {
        b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), bytes)
            .unwrap();
    }
    b.build().unwrap()
}

/// A fork-join: source `0`, `width` middle nodes, sink `width + 1`.
pub fn fork_join(width: usize, bytes: f64) -> TaskGraph {
    let mut b = GraphBuilder::with_capacity(width + 2, 2 * width);
    b.add_default_tasks(width + 2);
    let sink = NodeId(width as u32 + 1);
    for i in 0..width {
        let mid = NodeId(i as u32 + 1);
        b.add_edge(NodeId(0), mid, bytes).unwrap();
        b.add_edge(mid, sink, bytes).unwrap();
    }
    b.build().unwrap()
}

/// The four-node diamond `0 -> {1, 2} -> 3`.
pub fn diamond(bytes: f64) -> TaskGraph {
    let mut b = GraphBuilder::new();
    b.add_default_tasks(4);
    b.add_edge(NodeId(0), NodeId(1), bytes).unwrap();
    b.add_edge(NodeId(0), NodeId(2), bytes).unwrap();
    b.add_edge(NodeId(1), NodeId(3), bytes).unwrap();
    b.add_edge(NodeId(2), NodeId(3), bytes).unwrap();
    b.build().unwrap()
}

/// The series-parallel graph of the paper's Fig. 1: nodes `0..=5` with
/// edges 0-1, 1-2, 2-3, 1-3, 3-5, 0-4, 4-5.
pub fn fig1_graph(bytes: f64) -> TaskGraph {
    let mut b = GraphBuilder::new();
    b.add_default_tasks(6);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (1, 3), (3, 5), (0, 4), (4, 5)] {
        b.add_edge(NodeId(u), NodeId(v), bytes).unwrap();
    }
    b.build().unwrap()
}

/// The non-series-parallel graph of the paper's Fig. 2: Fig. 1 plus the
/// conflicting edge 1-4.
pub fn fig2_graph(bytes: f64) -> TaskGraph {
    let mut b = fig1_graph(bytes).into_builder();
    b.add_edge(NodeId(1), NodeId(4), bytes).unwrap();
    b.build().unwrap()
}

/// Configuration for [`layered_random`].
#[derive(Clone, Debug)]
pub struct LayeredConfig {
    /// Number of layers.
    pub layers: usize,
    /// Nodes per layer.
    pub width: usize,
    /// Probability of an edge between consecutive-layer node pairs.
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
    /// Data volume per edge.
    pub edge_bytes: f64,
}

/// A layered random DAG (generally *not* series-parallel): `layers × width`
/// nodes with random edges between consecutive layers.  Every node is
/// guaranteed at least one incoming edge (except layer 0) and one outgoing
/// edge (except the last layer), keeping the graph weakly connected.
pub fn layered_random(cfg: &LayeredConfig) -> TaskGraph {
    assert!(cfg.layers >= 1 && cfg.width >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.layers * cfg.width;
    let mut b = GraphBuilder::with_capacity(n, n * 2);
    b.add_default_tasks(n);
    let id = |layer: usize, i: usize| NodeId((layer * cfg.width + i) as u32);
    // Tracks which previous-layer nodes received an out-edge so the
    // connectivity fixup is O(width) bookkeeping instead of an edge-list
    // scan per node pair (`GraphBuilder::has_edge` is O(E); the scan
    // made generation super-quadratic, ruinous at the XL tier's 100k
    // nodes).  The RNG draw sequence and the emitted edges are
    // unchanged: same draws in the same order, same fixup condition.
    let mut has_out = vec![false; cfg.width];
    for layer in 1..cfg.layers {
        has_out.fill(false);
        for i in 0..cfg.width {
            let mut has_in = false;
            for (j, out) in has_out.iter_mut().enumerate() {
                if rng.gen_bool(cfg.density) {
                    b.add_edge(id(layer - 1, j), id(layer, i), cfg.edge_bytes)
                        .unwrap();
                    *out = true;
                    has_in = true;
                }
            }
            if !has_in {
                let j = rng.gen_range(0..cfg.width);
                b.add_edge(id(layer - 1, j), id(layer, i), cfg.edge_bytes)
                    .unwrap();
                has_out[j] = true;
            }
        }
        // Ensure every node of the previous layer has an outgoing edge.
        for (j, &out) in has_out.iter().enumerate() {
            if !out {
                let i = rng.gen_range(0..cfg.width);
                b.add_edge(id(layer - 1, j), id(layer, i), cfg.edge_bytes)
                    .unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn sp_graph_has_requested_size_and_two_terminals() {
        for nodes in [2, 3, 5, 20, 100] {
            let g = random_sp_graph(&SpGenConfig::new(nodes, 7));
            assert_eq!(g.node_count(), nodes);
            assert_eq!(ops::sources(&g).len(), 1, "nodes={nodes}");
            assert_eq!(ops::sinks(&g).len(), 1, "nodes={nodes}");
            assert!(ops::is_weakly_connected(&g));
            assert!(ops::topo_order(&g).is_some());
        }
    }

    #[test]
    fn sp_graph_has_no_parallel_duplicate_edges() {
        let g = random_sp_graph(&SpGenConfig::new(60, 11));
        let mut pairs = std::collections::HashSet::new();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pairs.insert((edge.src, edge.dst)), "duplicate edge");
        }
    }

    #[test]
    fn sp_graph_is_deterministic_per_seed() {
        let a = random_sp_graph(&SpGenConfig::new(40, 5));
        let b = random_sp_graph(&SpGenConfig::new(40, 5));
        let c = random_sp_graph(&SpGenConfig::new(40, 6));
        let sig = |g: &TaskGraph| {
            g.edge_ids()
                .map(|e| (g.edge(e).src.0, g.edge(e).dst.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c));
    }

    #[test]
    fn sp_graph_edge_count_is_linear() {
        // Series-parallel graphs are planar: |E| <= 2|V| - 3 after merging
        // duplicates.
        for seed in 0..10 {
            let g = random_sp_graph(&SpGenConfig::new(80, seed));
            assert!(g.edge_count() <= 2 * g.node_count() - 3);
        }
    }

    #[test]
    fn almost_sp_adds_requested_edges() {
        let cfg = SpGenConfig::new(50, 3);
        let base = random_sp_graph(&cfg);
        let aug = almost_sp_graph(&cfg, 30);
        assert_eq!(aug.node_count(), base.node_count());
        assert_eq!(aug.edge_count(), base.edge_count() + 30);
        assert!(ops::topo_order(&aug).is_some(), "must stay acyclic");
    }

    #[test]
    fn almost_sp_zero_extra_equals_base() {
        let cfg = SpGenConfig::new(30, 9);
        let base = random_sp_graph(&cfg);
        let aug = almost_sp_graph(&cfg, 0);
        assert_eq!(aug.edge_count(), base.edge_count());
    }

    #[test]
    fn random_topo_order_is_topological() {
        let g = random_sp_graph(&SpGenConfig::new(40, 1));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5 {
            let order = random_topo_order(&g, &mut rng);
            assert_eq!(order.len(), g.node_count());
            let mut pos = vec![0; g.node_count()];
            for (i, &v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            for e in g.edge_ids() {
                let edge = g.edge(e);
                assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
            }
        }
    }

    #[test]
    fn fixtures_shapes() {
        let c = chain(5, 1.0);
        assert_eq!((c.node_count(), c.edge_count()), (5, 4));
        let f = fork_join(3, 1.0);
        assert_eq!((f.node_count(), f.edge_count()), (5, 6));
        let d = diamond(1.0);
        assert_eq!((d.node_count(), d.edge_count()), (4, 4));
        let f1 = fig1_graph(1.0);
        assert_eq!((f1.node_count(), f1.edge_count()), (6, 7));
        let f2 = fig2_graph(1.0);
        assert_eq!((f2.node_count(), f2.edge_count()), (6, 8));
        assert!(f2.has_edge(NodeId(1), NodeId(4)));
    }

    #[test]
    fn layered_random_is_connected_dag() {
        let g = layered_random(&LayeredConfig {
            layers: 6,
            width: 4,
            density: 0.3,
            seed: 13,
            edge_bytes: 1.0,
        });
        assert_eq!(g.node_count(), 24);
        assert!(ops::topo_order(&g).is_some());
        assert!(ops::is_weakly_connected(&g));
    }

    /// The XL scale tier (`perf_report --xl`) generates 100k-node
    /// graphs; generation itself must stay cheap at that size.  The
    /// wall bound is deliberately generous — it catches an accidental
    /// super-quadratic regression, not build-profile noise.
    #[test]
    fn layered_random_100k_nodes_generates_quickly() {
        let nodes: usize = 100_000;
        let width = (nodes as f64).sqrt().round() as usize;
        let layers = nodes.div_ceil(width);
        let t = std::time::Instant::now();
        let g = layered_random(&LayeredConfig {
            layers,
            width,
            // The XL shape: constant average out-degree of ~4.
            density: 4.0 / width as f64,
            seed: 2025,
            edge_bytes: 50e6,
        });
        let elapsed = t.elapsed();
        assert_eq!(g.node_count(), layers * width);
        assert!(g.node_count() >= nodes);
        // ~4 out-edges per non-terminal node, with connectivity fixups
        // adding at most one edge per endpoint.
        let e = g.edge_count();
        assert!(
            (2 * nodes..8 * nodes).contains(&e),
            "unexpected edge count at 100k nodes: {e}"
        );
        assert!(
            elapsed.as_secs() < 60,
            "100k-node layered generation took {elapsed:?}"
        );
    }

    /// Same guard for the series-parallel generator at 100k nodes.
    #[test]
    fn random_sp_graph_100k_nodes_generates_quickly() {
        let nodes = 100_000;
        let t = std::time::Instant::now();
        let g = random_sp_graph(&SpGenConfig::new(nodes, 2025));
        let elapsed = t.elapsed();
        assert_eq!(g.node_count(), nodes);
        // Every series step adds one node + one edge, every parallel
        // step one edge: edges sit between n−1 and the step budget.
        let e = g.edge_count();
        assert!(
            (nodes - 1..4 * nodes).contains(&e),
            "unexpected edge count at 100k nodes: {e}"
        );
        assert!(
            elapsed.as_secs() < 60,
            "100k-node SP generation took {elapsed:?}"
        );
    }
}

//! Attribute augmentation (paper §IV-B).
//!
//! Random graphs come out of the generators with neutral attributes; this
//! module assigns the paper's distributions:
//!
//! * complexity ~ LogNormal(µ = 2, σ = 0.5) — operations per data point,
//! * streamability ~ LogNormal(µ = 2, σ = 0.5) — FPGA pipelining factor,
//! * parallelizability — perfect (1.0) with probability 0.5, otherwise
//!   uniform in `[0, 1]` (Amdahl's law makes imperfect values decay fast),
//! * area ∝ complexity (FPGA area limitation),
//! * constant data flow of 100 MB between tasks, from which the number of
//!   data points per task is derived.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dag::TaskGraph;
use crate::dist::lognormal;

/// Parameters of the augmentation scheme.  [`AugmentConfig::default`]
/// reproduces the paper's §IV-B values.
#[derive(Clone, Debug)]
pub struct AugmentConfig {
    /// µ of the complexity lognormal.
    pub complexity_mu: f64,
    /// σ of the complexity lognormal.
    pub complexity_sigma: f64,
    /// µ of the streamability lognormal.
    pub streamability_mu: f64,
    /// σ of the streamability lognormal.
    pub streamability_sigma: f64,
    /// Probability that a task is perfectly parallelizable.
    pub perfect_parallel_prob: f64,
    /// FPGA area units per unit of complexity.
    pub area_per_complexity: f64,
    /// Data volume placed on every edge, in bytes (paper: 100 MB).
    pub edge_bytes: f64,
    /// Bytes per data point used to derive `data_points` from the data
    /// flow (one `f64` per point).
    pub bytes_per_point: f64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            complexity_mu: 2.0,
            complexity_sigma: 0.5,
            streamability_mu: 2.0,
            streamability_sigma: 0.5,
            perfect_parallel_prob: 0.5,
            area_per_complexity: 8.0,
            edge_bytes: 100e6,
            bytes_per_point: 8.0,
        }
    }
}

/// Apply the augmentation scheme to every task and edge of `g`, seeded by
/// `seed`.  Deterministic: equal `(graph, cfg, seed)` triples produce equal
/// attributes.
pub fn augment(g: &mut TaskGraph, cfg: &AugmentConfig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = cfg.edge_bytes / cfg.bytes_per_point;
    for v in 0..g.node_count() {
        let t = g.task_mut(crate::dag::NodeId(v as u32));
        t.complexity = lognormal(&mut rng, cfg.complexity_mu, cfg.complexity_sigma);
        t.streamability = lognormal(&mut rng, cfg.streamability_mu, cfg.streamability_sigma);
        t.parallelizability = if rng.gen_bool(cfg.perfect_parallel_prob) {
            1.0
        } else {
            rng.gen::<f64>()
        };
        t.area = cfg.area_per_complexity * t.complexity;
        t.data_points = points;
    }
    for e in 0..g.edge_count() {
        *g.edge_bytes_mut(crate::dag::EdgeId(e as u32)) = cfg.edge_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_sp_graph, SpGenConfig};

    #[test]
    fn augment_is_deterministic() {
        let mut a = random_sp_graph(&SpGenConfig::new(30, 1));
        let mut b = random_sp_graph(&SpGenConfig::new(30, 1));
        augment(&mut a, &AugmentConfig::default(), 99);
        augment(&mut b, &AugmentConfig::default(), 99);
        for (ta, tb) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(ta.complexity, tb.complexity);
            assert_eq!(ta.parallelizability, tb.parallelizability);
        }
    }

    #[test]
    fn augment_ranges() {
        let mut g = random_sp_graph(&SpGenConfig::new(200, 2));
        augment(&mut g, &AugmentConfig::default(), 5);
        let mut perfect = 0;
        for t in g.tasks() {
            assert!(t.complexity > 0.0);
            assert!(t.streamability > 0.0);
            assert!((0.0..=1.0).contains(&t.parallelizability));
            assert!((t.area - 8.0 * t.complexity).abs() < 1e-12);
            assert_eq!(t.data_points, 100e6 / 8.0);
            if t.parallelizability == 1.0 {
                perfect += 1;
            }
        }
        // ~50 % perfectly parallelizable.
        assert!((60..=140).contains(&perfect), "perfect={perfect}");
    }

    #[test]
    fn augment_sets_edge_bytes() {
        let mut g = random_sp_graph(&SpGenConfig::new(20, 3));
        let cfg = AugmentConfig {
            edge_bytes: 42.0,
            ..AugmentConfig::default()
        };
        augment(&mut g, &cfg, 0);
        for e in g.edge_ids() {
            assert_eq!(g.edge(e).bytes, 42.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = random_sp_graph(&SpGenConfig::new(30, 1));
        let mut b = random_sp_graph(&SpGenConfig::new(30, 1));
        augment(&mut a, &AugmentConfig::default(), 1);
        augment(&mut b, &AugmentConfig::default(), 2);
        let same = a
            .tasks()
            .iter()
            .zip(b.tasks())
            .all(|(x, y)| x.complexity == y.complexity);
        assert!(!same);
    }
}

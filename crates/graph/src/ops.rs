//! Topological utilities over [`TaskGraph`].
//!
//! Everything here is `O(V + E)` unless stated otherwise; these routines
//! back both the generators and the model evaluator.

use crate::dag::{EdgeId, NodeId, Task, TaskGraph};

/// Kahn topological order, or `None` if the edge set has a cycle.
pub fn topo_order(g: &TaskGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: Vec<NodeId> = g.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// BFS layer index for every node: sources are layer 0, every other node
/// sits one past its deepest predecessor.
pub fn bfs_layers(g: &TaskGraph) -> Vec<u32> {
    let order = topo_order(g).expect("graph is a DAG by construction");
    let mut layer = vec![0u32; g.node_count()];
    for &v in &order {
        for s in g.successors(v) {
            layer[s.index()] = layer[s.index()].max(layer[v.index()] + 1);
        }
    }
    layer
}

/// All nodes with no incoming edges.
pub fn sources(g: &TaskGraph) -> Vec<NodeId> {
    g.nodes().filter(|&v| g.in_degree(v) == 0).collect()
}

/// All nodes with no outgoing edges.
pub fn sinks(g: &TaskGraph) -> Vec<NodeId> {
    g.nodes().filter(|&v| g.out_degree(v) == 0).collect()
}

/// Nodes reachable from `start` (including `start`), as a boolean mask.
pub fn reachable_from(g: &TaskGraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for s in g.successors(v) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// `true` if the graph is weakly connected (ignoring edge direction).
/// The empty graph counts as connected.
pub fn is_weakly_connected(g: &TaskGraph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![NodeId(0)];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for w in g.successors(v).chain(g.predecessors(v)) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

/// Edge ids that are transitively redundant: `(u, v)` such that `v` stays
/// reachable from `u` without using that edge.  `O(V · E)` — only used by
/// generators and tests, never in the mapping hot path.
pub fn transitively_redundant_edges(g: &TaskGraph) -> Vec<EdgeId> {
    let order = topo_order(g).expect("graph is a DAG by construction");
    let mut pos = vec![0usize; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut redundant = Vec::new();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        // BFS from src skipping this particular edge; prune by topo position.
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![edge.src];
        seen[edge.src.index()] = true;
        let mut hit = false;
        'search: while let Some(v) = stack.pop() {
            for &oe in g.out_edges(v) {
                if oe == e {
                    continue;
                }
                let w = g.edge(oe).dst;
                if w == edge.dst {
                    hit = true;
                    break 'search;
                }
                if !seen[w.index()] && pos[w.index()] < pos[edge.dst.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            }
        }
        if hit {
            redundant.push(e);
        }
    }
    redundant
}

/// Longest path length through the DAG under caller-supplied node and edge
/// weights; the classic critical-path lower bound for any schedule.
pub fn critical_path(
    g: &TaskGraph,
    node_weight: impl Fn(NodeId) -> f64,
    edge_weight: impl Fn(EdgeId) -> f64,
) -> f64 {
    let order = topo_order(g).expect("graph is a DAG by construction");
    let mut dist = vec![0.0f64; g.node_count()];
    let mut best: f64 = 0.0;
    for &v in order.iter().rev() {
        let mut tail: f64 = 0.0;
        for &e in g.out_edges(v) {
            let s = g.edge(e).dst;
            tail = tail.max(edge_weight(e) + dist[s.index()]);
        }
        dist[v.index()] = node_weight(v) + tail;
        best = best.max(dist[v.index()]);
    }
    best
}

/// Result of [`normalize_terminals`]: the augmented graph plus the ids of
/// the (possibly virtual) unique source and sink.
pub struct NormalizedGraph {
    /// Graph guaranteed to have exactly one source and one sink.
    pub graph: TaskGraph,
    /// The unique source.
    pub source: NodeId,
    /// The unique sink.
    pub sink: NodeId,
    /// `true` if `source` was inserted (it is then the node with the
    /// second-highest id, i.e. `graph.node_count() - 2` when both were added,
    /// see `virtual_source`/`virtual_sink`).
    pub virtual_source: bool,
    /// `true` if `sink` was inserted.
    pub virtual_sink: bool,
}

/// Ensure the graph has a single source and a single sink by inserting
/// zero-weight virtual terminals where needed (paper §III-C: "we may just
/// insert new start and end nodes").  Virtual tasks have zero complexity
/// and zero-byte edges so they never affect the makespan; original node ids
/// are preserved.
pub fn normalize_terminals(g: &TaskGraph) -> NormalizedGraph {
    let srcs = sources(g);
    let snks = sinks(g);
    assert!(
        !srcs.is_empty() && !snks.is_empty(),
        "DAG must have at least one source and sink"
    );
    let need_src = srcs.len() > 1;
    let need_snk = snks.len() > 1;
    if !need_src && !need_snk {
        return NormalizedGraph {
            graph: g.clone(),
            source: srcs[0],
            sink: snks[0],
            virtual_source: false,
            virtual_sink: false,
        };
    }
    let mut b = g.clone().into_builder();
    let source = if need_src {
        let v = b.add_task(Task {
            name: "__virtual_source".into(),
            complexity: 0.0,
            data_points: 0.0,
            ..Task::default()
        });
        for s in srcs {
            b.add_edge(v, s, 0.0).expect("virtual source edge");
        }
        v
    } else {
        srcs[0]
    };
    let sink = if need_snk {
        let v = b.add_task(Task {
            name: "__virtual_sink".into(),
            complexity: 0.0,
            data_points: 0.0,
            ..Task::default()
        });
        for s in snks {
            b.add_edge(s, v, 0.0).expect("virtual sink edge");
        }
        v
    } else {
        snks[0]
    };
    NormalizedGraph {
        graph: b.build().expect("normalization preserves acyclicity"),
        source,
        sink,
        virtual_source: need_src,
        virtual_sink: need_snk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GraphBuilder;

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let n = b.add_default_tasks(4);
        let id = |i: u32| NodeId(n.0 + i);
        b.add_edge(id(0), id(1), 1.0).unwrap();
        b.add_edge(id(0), id(2), 1.0).unwrap();
        b.add_edge(id(1), id(3), 1.0).unwrap();
        b.add_edge(id(2), id(3), 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn topo_order_is_valid() {
        let g = diamond();
        let order = topo_order(&g).unwrap();
        let mut pos = vec![0; 4];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn bfs_layers_diamond() {
        let g = diamond();
        assert_eq!(bfs_layers(&g), vec![0, 1, 1, 2]);
    }

    #[test]
    fn sources_and_sinks() {
        let g = diamond();
        assert_eq!(sources(&g), vec![NodeId(0)]);
        assert_eq!(sinks(&g), vec![NodeId(3)]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let r = reachable_from(&g, NodeId(1));
        assert_eq!(r, vec![false, true, false, true]);
    }

    #[test]
    fn weak_connectivity() {
        let g = diamond();
        assert!(is_weakly_connected(&g));
        let mut b = GraphBuilder::new();
        b.add_default_tasks(2);
        let g2 = b.build().unwrap();
        assert!(!is_weakly_connected(&g2));
    }

    #[test]
    fn redundant_edge_detection() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2.
        let mut b = GraphBuilder::new();
        b.add_default_tasks(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let shortcut = b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(transitively_redundant_edges(&g), vec![shortcut]);
        // The diamond has no redundant edges.
        assert!(transitively_redundant_edges(&diamond()).is_empty());
    }

    #[test]
    fn critical_path_diamond() {
        let g = diamond();
        // Unit node weights, zero edge weights: longest chain 0-1-3 = 3 nodes.
        let cp = critical_path(&g, |_| 1.0, |_| 0.0);
        assert_eq!(cp, 3.0);
        // Edge weights only: two hops.
        let cp = critical_path(&g, |_| 0.0, |_| 5.0);
        assert_eq!(cp, 10.0);
    }

    #[test]
    fn normalize_no_op_for_two_terminal_graph() {
        let g = diamond();
        let n = normalize_terminals(&g);
        assert!(!n.virtual_source && !n.virtual_sink);
        assert_eq!(n.graph.node_count(), 4);
        assert_eq!(n.source, NodeId(0));
        assert_eq!(n.sink, NodeId(3));
    }

    #[test]
    fn normalize_adds_virtual_terminals() {
        // Two disjoint edges: 0->1, 2->3 (two sources, two sinks).
        let mut b = GraphBuilder::new();
        b.add_default_tasks(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let n = normalize_terminals(&g);
        assert!(n.virtual_source && n.virtual_sink);
        assert_eq!(n.graph.node_count(), 6);
        assert_eq!(n.graph.out_degree(n.source), 2);
        assert_eq!(n.graph.in_degree(n.sink), 2);
        assert_eq!(n.graph.task(n.source).complexity, 0.0);
        // Virtual edges carry zero bytes.
        for &e in n.graph.out_edges(n.source) {
            assert_eq!(n.graph.edge(e).bytes, 0.0);
        }
    }

    #[test]
    fn normalize_single_source_multi_sink() {
        let mut b = GraphBuilder::new();
        b.add_default_tasks(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let n = normalize_terminals(&g);
        assert!(!n.virtual_source);
        assert!(n.virtual_sink);
        assert_eq!(n.source, NodeId(0));
        assert_eq!(n.graph.node_count(), 4);
    }
}

//! Core DAG data structures: [`Task`], [`Edge`], [`TaskGraph`] and the
//! mutable [`GraphBuilder`].
//!
//! Node and edge handles are plain `u32` newtypes.  All adjacency is stored
//! as index lists so graphs can be cloned cheaply and traversed without
//! pointer chasing — the evaluator in `spmap-model` walks these arrays in
//! its innermost loop.

use std::fmt;

/// Identifier of a task node inside a [`TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in the graph's task array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a dependency edge inside a [`TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge's position in the graph's edge array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A task node and its platform-model attributes (paper §IV-B / DESIGN §6.1).
///
/// * `complexity` — operations performed per data point,
/// * `data_points` — number of data points the task processes,
/// * `parallelizability` — Amdahl fraction in `[0, 1]`; `1.0` means the
///   task scales perfectly with core count,
/// * `streamability` — FPGA pipelining factor (≥ 1 is useful; the model
///   clamps below 1),
/// * `area` — FPGA area demand in abstract area units.
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    /// Human-readable label (used by DOT export and workflow recipes).
    pub name: String,
    /// Operations per data point.
    pub complexity: f64,
    /// Number of data points processed.
    pub data_points: f64,
    /// Amdahl fraction in `[0, 1]`.
    pub parallelizability: f64,
    /// FPGA pipelining factor.
    pub streamability: f64,
    /// FPGA area demand.
    pub area: f64,
}

impl Task {
    /// A task with the given name and neutral attributes.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Total number of operations this task performs.
    #[inline]
    pub fn ops(&self) -> f64 {
        self.complexity * self.data_points
    }
}

impl Default for Task {
    fn default() -> Self {
        Self {
            name: String::new(),
            complexity: 1.0,
            data_points: 1.0,
            parallelizability: 0.0,
            streamability: 1.0,
            area: 1.0,
        }
    }
}

/// A directed dependency edge carrying `bytes` of data from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Producing task.
    pub src: NodeId,
    /// Consuming task.
    pub dst: NodeId,
    /// Data volume transported along this dependency, in bytes.
    pub bytes: f64,
}

/// Errors raised while building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge from a node to itself was requested.
    SelfLoop(NodeId),
    /// The edge set contains a directed cycle.
    Cycle,
    /// An endpoint is out of range.
    InvalidNode(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(n) => write!(f, "self loop at {n}"),
            GraphError::Cycle => write!(f, "edge set contains a directed cycle"),
            GraphError::InvalidNode(n) => write!(f, "node {n} out of range"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable directed acyclic task graph.
///
/// Construct via [`GraphBuilder`].  Node and edge ids are dense and stable;
/// adjacency is exposed as edge-id slices plus convenience neighbor
/// iterators.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl TaskGraph {
    /// Number of task nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of dependency edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.tasks.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids in index order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The task stored at `n`.
    #[inline]
    pub fn task(&self, n: NodeId) -> &Task {
        &self.tasks[n.index()]
    }

    /// Mutable access to the task stored at `n` (used by augmentation).
    #[inline]
    pub fn task_mut(&mut self, n: NodeId) -> &mut Task {
        &mut self.tasks[n.index()]
    }

    /// The edge stored at `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Mutable access to the data volume of edge `e`.
    #[inline]
    pub fn edge_bytes_mut(&mut self, e: EdgeId) -> &mut f64 {
        &mut self.edges[e.index()].bytes
    }

    /// All task attributes as a slice (index = node id).
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All edges as a slice (index = edge id).
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edge ids of `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.index()]
    }

    /// Incoming edge ids of `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n.index()]
    }

    /// Number of outgoing edges of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// Number of incoming edges of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// Iterator over the direct successors of `n` (with multiplicity).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[n.index()]
            .iter()
            .map(|&e| self.edges[e.index()].dst)
    }

    /// Iterator over the direct predecessors of `n` (with multiplicity).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[n.index()]
            .iter()
            .map(|&e| self.edges[e.index()].src)
    }

    /// `true` if a direct edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_adj[u.index()]
            .iter()
            .any(|&e| self.edges[e.index()].dst == v)
    }

    /// Total data volume entering `n`, in bytes.
    pub fn input_bytes(&self, n: NodeId) -> f64 {
        self.in_adj[n.index()]
            .iter()
            .map(|&e| self.edges[e.index()].bytes)
            .sum()
    }

    /// Total data volume leaving `n`, in bytes.
    pub fn output_bytes(&self, n: NodeId) -> f64 {
        self.out_adj[n.index()]
            .iter()
            .map(|&e| self.edges[e.index()].bytes)
            .sum()
    }

    /// Decompose back into a builder, e.g. to add edges to an existing graph.
    pub fn into_builder(self) -> GraphBuilder {
        GraphBuilder {
            tasks: self.tasks,
            edges: self.edges.into_iter().map(Some).collect(),
        }
    }
}

/// Mutable graph construction interface.
///
/// Edges can be removed during construction (generator algorithms rewire
/// edges); removal leaves a tombstone that is compacted by [`GraphBuilder::build`],
/// so edge ids are only stable *after* building.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    tasks: Vec<Task>,
    edges: Vec<Option<Edge>>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `nodes` tasks and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            tasks: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of tasks added so far.
    pub fn node_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of live (non-removed) edges.
    pub fn live_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    /// Append a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> NodeId {
        let id = NodeId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Append `n` default tasks named `t0..t{n-1}`, returning the first id.
    pub fn add_default_tasks(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.tasks.len() as u32);
        for i in 0..n {
            self.add_task(Task::named(format!("t{}", first.0 as usize + i)));
        }
        first
    }

    /// Add an edge `u -> v` carrying `bytes`.  Self loops are rejected;
    /// duplicate (parallel) edges are allowed here and may be merged later
    /// with [`GraphBuilder::merge_parallel_edges`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, bytes: f64) -> Result<EdgeId, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let n = self.tasks.len() as u32;
        if u.0 >= n {
            return Err(GraphError::InvalidNode(u));
        }
        if v.0 >= n {
            return Err(GraphError::InvalidNode(v));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(Edge {
            src: u,
            dst: v,
            bytes,
        }));
        Ok(id)
    }

    /// Remove edge `e` (tombstoned until [`GraphBuilder::build`]).
    pub fn remove_edge(&mut self, e: EdgeId) {
        self.edges[e.index()] = None;
    }

    /// The endpoints of a live edge, if it still exists.
    pub fn edge(&self, e: EdgeId) -> Option<&Edge> {
        self.edges[e.index()].as_ref()
    }

    /// Mutable access to a live edge.
    pub fn edge_mut(&mut self, e: EdgeId) -> Option<&mut Edge> {
        self.edges[e.index()].as_mut()
    }

    /// Ids of all live edges.
    pub fn live_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// `true` if a live edge `u -> v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges
            .iter()
            .flatten()
            .any(|e| e.src == u && e.dst == v)
    }

    /// Merge parallel (duplicate) edges between the same ordered node pair,
    /// summing their data volumes.  This implements the paper's "redundant
    /// edges are removed" post-processing of the series-parallel generator.
    pub fn merge_parallel_edges(&mut self) {
        use std::collections::HashMap;
        let mut seen: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for i in 0..self.edges.len() {
            let Some(e) = self.edges[i] else { continue };
            match seen.entry((e.src, e.dst)) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    let fi = *first.get();
                    if let Some(fe) = self.edges[fi].as_mut() {
                        fe.bytes += e.bytes;
                    }
                    self.edges[i] = None;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                }
            }
        }
    }

    /// Finalize into an immutable [`TaskGraph`], verifying acyclicity.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        let tasks = self.tasks;
        let edges: Vec<Edge> = self.edges.into_iter().flatten().collect();
        let n = tasks.len();
        let mut out_adj: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out_adj[e.src.index()].push(EdgeId(i as u32));
            in_adj[e.dst.index()].push(EdgeId(i as u32));
        }
        let g = TaskGraph {
            tasks,
            edges,
            out_adj,
            in_adj,
        };
        if crate::ops::topo_order(&g).is_none() {
            return Err(GraphError::Cycle);
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_task(Task::named("a"));
        let n1 = b.add_task(Task::named("b"));
        let n2 = b.add_task(Task::named("c"));
        let n3 = b.add_task(Task::named("d"));
        b.add_edge(n0, n1, 10.0).unwrap();
        b.add_edge(n0, n2, 20.0).unwrap();
        b.add_edge(n1, n3, 30.0).unwrap();
        b.add_edge(n2, n3, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_diamond() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.task(NodeId(2)).name, "c");
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn neighbor_iterators() {
        let g = diamond();
        let succ: Vec<_> = g.successors(NodeId(0)).collect();
        assert_eq!(succ, vec![NodeId(1), NodeId(2)]);
        let pred: Vec<_> = g.predecessors(NodeId(3)).collect();
        assert_eq!(pred, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn input_output_bytes() {
        let g = diamond();
        assert_eq!(g.input_bytes(NodeId(3)), 70.0);
        assert_eq!(g.output_bytes(NodeId(0)), 30.0);
        assert_eq!(g.input_bytes(NodeId(0)), 0.0);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let n = b.add_task(Task::default());
        assert_eq!(b.add_edge(n, n, 1.0), Err(GraphError::SelfLoop(n)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = GraphBuilder::new();
        let n = b.add_task(Task::default());
        assert_eq!(
            b.add_edge(n, NodeId(7), 1.0),
            Err(GraphError::InvalidNode(NodeId(7)))
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(Task::default());
        let c = b.add_task(Task::default());
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, a, 1.0).unwrap();
        assert_eq!(b.build().err(), Some(GraphError::Cycle));
    }

    #[test]
    fn remove_edge_tombstones_and_compacts() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(Task::default());
        let c = b.add_task(Task::default());
        let d = b.add_task(Task::default());
        let e0 = b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, d, 2.0).unwrap();
        b.remove_edge(e0);
        assert_eq!(b.live_edge_count(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(EdgeId(0)).bytes, 2.0);
    }

    #[test]
    fn merge_parallel_edges_sums_bytes() {
        let mut b = GraphBuilder::new();
        let a = b.add_task(Task::default());
        let c = b.add_task(Task::default());
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(a, c, 2.0).unwrap();
        b.add_edge(a, c, 4.0).unwrap();
        b.merge_parallel_edges();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(EdgeId(0)).bytes, 7.0);
    }

    #[test]
    fn into_builder_roundtrip() {
        let g = diamond();
        let mut b = g.into_builder();
        let extra = b.add_task(Task::named("e"));
        b.add_edge(NodeId(3), extra, 5.0).unwrap();
        let g2 = b.build().unwrap();
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.edge_count(), 5);
    }

    #[test]
    fn task_ops() {
        let t = Task {
            complexity: 3.0,
            data_points: 4.0,
            ..Task::default()
        };
        assert_eq!(t.ops(), 12.0);
    }
}

//! Per-task execution-time and per-edge transfer-time cost functions.
//!
//! These implement the device formulas of DESIGN.md §6.2.  They are pure
//! and cheap; the evaluator pre-tabulates [`exec_time`] per (task, device)
//! pair once per graph.

use spmap_graph::Task;

use crate::platform::{DeviceSpec, Platform};
use crate::DeviceId;

/// Amdahl's-law speedup of a task with parallelizable fraction `p` on `k`
/// cores: `1 / ((1 - p) + p / k)`.
#[inline]
pub fn amdahl(p: f64, k: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "parallelizability {p}");
    debug_assert!(k >= 1.0);
    1.0 / ((1.0 - p) + p / k)
}

/// Execution time of `task` on device `d` of `platform`, in seconds.
///
/// * CPU: `ops / (core_throughput · amdahl(p, cores))`
/// * GPU: heterogeneous Amdahl —
///   `launch + (1−p)·ops / serial_throughput + p·ops / (cores · core_throughput · η)`:
///   the serial fraction runs on the GPU's slow scalar path, so the
///   cliff for imperfectly parallelizable tasks is steep,
/// * FPGA: `ops / (base_throughput · clamp(s, 1, s_max))` — streamability
///   acts as the pipelining factor; parallelizability is irrelevant on a
///   spatial datapath.
pub fn exec_time(platform: &Platform, d: DeviceId, task: &Task) -> f64 {
    let ops = task.ops();
    if ops <= 0.0 {
        return 0.0;
    }
    match platform.device(d).spec {
        DeviceSpec::Cpu {
            cores,
            core_throughput,
        } => ops / (core_throughput * amdahl(task.parallelizability, cores)),
        DeviceSpec::Gpu {
            cores,
            core_throughput,
            dispatch_efficiency,
            launch_latency,
            serial_throughput,
        } => {
            let p = task.parallelizability;
            launch_latency
                + (1.0 - p) * ops / serial_throughput
                + p * ops / (cores * core_throughput * dispatch_efficiency)
        }
        DeviceSpec::Fpga {
            base_throughput,
            max_streamability,
            ..
        } => {
            let s = task.streamability.clamp(1.0, max_streamability);
            ops / (base_throughput * s)
        }
    }
}

/// FPGA area demand of a task (0 on non-FPGA devices).
#[inline]
pub fn area_demand(platform: &Platform, d: DeviceId, task: &Task) -> f64 {
    if platform.is_fpga(d) {
        task.area
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn task(p: f64, s: f64) -> Task {
        Task {
            complexity: 8.0,
            data_points: 1e7,
            parallelizability: p,
            streamability: s,
            area: 64.0,
            ..Task::default()
        }
    }

    #[test]
    fn amdahl_limits() {
        assert_eq!(amdahl(0.0, 16.0), 1.0);
        assert!((amdahl(1.0, 16.0) - 16.0).abs() < 1e-12);
        // p = 0.5 on infinite cores tends to 2.
        assert!((amdahl(0.5, 1e12) - 2.0).abs() < 1e-6);
        // Monotone in p.
        assert!(amdahl(0.7, 16.0) > amdahl(0.5, 16.0));
    }

    #[test]
    fn cpu_time_scales_with_parallelizability() {
        let p = Platform::reference();
        let serial = exec_time(&p, DeviceId(0), &task(0.0, 1.0));
        let parallel = exec_time(&p, DeviceId(0), &task(1.0, 1.0));
        assert!((serial / parallel - 16.0).abs() < 1e-9);
        // 8e7 ops at 0.3 Gop/s serial.
        assert!((serial - 8e7 / 0.3e9).abs() < 1e-9);
    }

    #[test]
    fn gpu_cliff() {
        let p = Platform::reference();
        let gpu = DeviceId(1);
        let cpu = DeviceId(0);
        // Perfectly parallel work flies on the GPU...
        assert!(exec_time(&p, gpu, &task(1.0, 1.0)) < exec_time(&p, cpu, &task(1.0, 1.0)));
        // ...but serial work is far slower than the CPU.
        assert!(exec_time(&p, gpu, &task(0.0, 1.0)) > 15.0 * exec_time(&p, cpu, &task(0.0, 1.0)));
        // The cliff is steep: even p = 0.95 is clearly worse than the CPU.
        assert!(exec_time(&p, gpu, &task(0.95, 1.0)) > exec_time(&p, cpu, &task(0.95, 1.0)));
    }

    #[test]
    fn gpu_launch_latency_floor() {
        let p = Platform::reference();
        let tiny = Task {
            complexity: 1e-6,
            data_points: 1.0,
            parallelizability: 1.0,
            ..Task::default()
        };
        let t = exec_time(&p, DeviceId(1), &tiny);
        assert!(t >= 10e-6);
    }

    #[test]
    fn fpga_time_scales_with_streamability() {
        let p = Platform::reference();
        let f = DeviceId(2);
        let slow = exec_time(&p, f, &task(0.0, 1.0));
        let fast = exec_time(&p, f, &task(0.0, 4.0));
        assert!((slow / fast - 4.0).abs() < 1e-9);
        // Streamability below 1 is clamped up to 1.
        assert_eq!(exec_time(&p, f, &task(0.0, 0.25)), slow);
        // And clamped above max_streamability (7).
        let capped = exec_time(&p, f, &task(0.0, 1000.0));
        assert!((slow / capped - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_ignores_parallelizability() {
        let p = Platform::reference();
        let f = DeviceId(2);
        assert_eq!(
            exec_time(&p, f, &task(0.0, 4.0)),
            exec_time(&p, f, &task(1.0, 4.0))
        );
    }

    #[test]
    fn fpga_calibration_single_task_never_wins() {
        // Calibration property (§III-B local minima): no single task is
        // faster on the FPGA than on the CPU — even fully streamable
        // serial tasks pay ~2x.  Only *pipelined chains* amortize the
        // fabric's low clock, which is exactly the synergy the
        // series-parallel subgraph set exposes.
        let p = Platform::reference();
        for s in [1.0, 7.4, 32.0] {
            let t = task(0.0, s);
            assert!(
                exec_time(&p, DeviceId(2), &t) > exec_time(&p, DeviceId(0), &t),
                "s = {s}"
            );
        }
        let parallel = task(1.0, 7.4);
        assert!(exec_time(&p, DeviceId(0), &parallel) < exec_time(&p, DeviceId(2), &parallel));
    }

    #[test]
    fn zero_ops_is_free_everywhere() {
        let p = Platform::reference();
        let empty = Task {
            complexity: 0.0,
            data_points: 0.0,
            ..Task::default()
        };
        for d in p.device_ids() {
            assert_eq!(exec_time(&p, d, &empty), 0.0);
        }
    }

    #[test]
    fn area_demand_only_on_fpga() {
        let p = Platform::reference();
        let t = task(0.5, 2.0);
        assert_eq!(area_demand(&p, DeviceId(0), &t), 0.0);
        assert_eq!(area_demand(&p, DeviceId(2), &t), 64.0);
    }
}

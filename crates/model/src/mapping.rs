//! Task → device assignments.

use spmap_graph::{NodeId, TaskGraph};

use crate::platform::Platform;
use crate::DeviceId;

/// A complete task mapping: one device per task node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    devices: Vec<DeviceId>,
}

impl Mapping {
    /// Every task on device `d`.
    pub fn uniform(task_count: usize, d: DeviceId) -> Self {
        Self {
            devices: vec![d; task_count],
        }
    }

    /// Every task on the platform's default device (the paper's step 1).
    pub fn all_default(graph: &TaskGraph, platform: &Platform) -> Self {
        Self::uniform(graph.node_count(), platform.default_device())
    }

    /// Build from an explicit per-task device vector.
    pub fn from_vec(devices: Vec<DeviceId>) -> Self {
        Self { devices }
    }

    /// Number of mapped tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when there are no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device of task `n`.
    #[inline]
    pub fn device(&self, n: NodeId) -> DeviceId {
        self.devices[n.index()]
    }

    /// Assign task `n` to device `d`.
    #[inline]
    pub fn set(&mut self, n: NodeId, d: DeviceId) {
        self.devices[n.index()] = d;
    }

    /// Overwrite this mapping with `other` without reallocating (the
    /// candidate engine re-syncs per-worker mapping copies this way).
    /// Panics if the task counts differ.
    #[inline]
    pub fn copy_from(&mut self, other: &Mapping) {
        self.devices.copy_from_slice(&other.devices);
    }

    /// The raw assignment slice (index = node id).
    #[inline]
    pub fn as_slice(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of tasks mapped to `d`.
    pub fn count_on(&self, d: DeviceId) -> usize {
        self.devices.iter().filter(|&&x| x == d).count()
    }

    /// Total FPGA area consumed on device `d` (0 if `d` is not an FPGA).
    pub fn area_on(&self, graph: &TaskGraph, platform: &Platform, d: DeviceId) -> f64 {
        if !platform.is_fpga(d) {
            return 0.0;
        }
        self.devices
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == d)
            .map(|(i, _)| graph.task(NodeId(i as u32)).area)
            .sum()
    }

    /// `true` if every FPGA's area budget is respected.
    pub fn is_area_feasible(&self, graph: &TaskGraph, platform: &Platform) -> bool {
        platform
            .device_ids()
            .filter(|&d| platform.is_fpga(d))
            .all(|d| self.area_on(graph, platform, d) <= platform.device(d).area_capacity() + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::diamond;

    #[test]
    fn uniform_and_set() {
        let mut m = Mapping::uniform(4, DeviceId(0));
        assert_eq!(m.len(), 4);
        assert_eq!(m.count_on(DeviceId(0)), 4);
        m.set(NodeId(2), DeviceId(1));
        assert_eq!(m.device(NodeId(2)), DeviceId(1));
        assert_eq!(m.count_on(DeviceId(0)), 3);
        assert_eq!(m.count_on(DeviceId(1)), 1);
    }

    #[test]
    fn all_default_uses_platform_default() {
        let g = diamond(1.0);
        let p = Platform::reference();
        let m = Mapping::all_default(&g, &p);
        assert_eq!(m.count_on(p.default_device()), 4);
    }

    #[test]
    fn area_accounting() {
        let mut g = diamond(1.0);
        let p = Platform::reference();
        for v in 0..4 {
            g.task_mut(NodeId(v)).area = 900.0;
        }
        let mut m = Mapping::all_default(&g, &p);
        assert_eq!(m.area_on(&g, &p, DeviceId(2)), 0.0);
        assert!(m.is_area_feasible(&g, &p));
        m.set(NodeId(0), DeviceId(2));
        m.set(NodeId(1), DeviceId(2));
        assert_eq!(m.area_on(&g, &p, DeviceId(2)), 1800.0);
        assert!(m.is_area_feasible(&g, &p), "1800 <= 2400");
        m.set(NodeId(2), DeviceId(2));
        assert!(!m.is_area_feasible(&g, &p), "2700 > 2400");
        // Area on a non-FPGA device is always 0 / feasible.
        assert_eq!(m.area_on(&g, &p, DeviceId(0)), 0.0);
    }
}

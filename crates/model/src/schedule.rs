//! Schedule policies: priority orders fed to the list-schedule evaluator.
//!
//! A "schedule" in the paper's sense (§IV-A) is a per-device execution
//! order.  We represent it as a *priority rank per task* (lower = earlier);
//! the evaluator pops ready tasks in rank order, which induces the device
//! orders while always respecting precedence.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spmap_graph::gen::random_topo_order;
use spmap_graph::{ops, TaskGraph};

/// How to derive the priority order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Breadth-first layers, ties broken by node id — the paper's
    /// deterministic baseline schedule.
    Bfs,
    /// A seeded uniformly random topological order.
    RandomTopo {
        /// RNG seed for the order.
        seed: u64,
    },
}

/// Compute the priority rank of every node under `policy`
/// (`rank[node] = position`, lower runs earlier among ready tasks).
pub fn priority_ranks(graph: &TaskGraph, policy: SchedulePolicy) -> Vec<u32> {
    match policy {
        SchedulePolicy::Bfs => {
            let layers = ops::bfs_layers(graph);
            let mut order: Vec<u32> = (0..graph.node_count() as u32).collect();
            order.sort_by_key(|&v| (layers[v as usize], v));
            invert(&order)
        }
        SchedulePolicy::RandomTopo { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let order = random_topo_order(graph, &mut rng);
            let order: Vec<u32> = order.into_iter().map(|v| v.0).collect();
            invert(&order)
        }
    }
}

fn invert(order: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; order.len()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{fig1_graph, random_sp_graph, SpGenConfig};
    use spmap_graph::NodeId;

    #[test]
    fn bfs_ranks_respect_layers() {
        let g = fig1_graph(1.0);
        let ranks = priority_ranks(&g, SchedulePolicy::Bfs);
        // Source (node 0) first.
        assert_eq!(ranks[0], 0);
        // Sink (node 5) has the deepest layer, so the highest rank.
        assert_eq!(ranks[5], 5);
        // Every edge goes from a lower to a higher BFS layer here, so rank
        // must increase along edges.
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(ranks[edge.src.index()] < ranks[edge.dst.index()]);
        }
    }

    #[test]
    fn random_ranks_are_topological_and_seeded() {
        let g = random_sp_graph(&SpGenConfig::new(40, 4));
        let a = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 1 });
        let b = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 1 });
        let c = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(a[edge.src.index()] < a[edge.dst.index()]);
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = random_sp_graph(&SpGenConfig::new(25, 9));
        let ranks = priority_ranks(&g, SchedulePolicy::Bfs);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..g.node_count() as u32).collect();
        assert_eq!(sorted, expect);
        let _ = NodeId(0); // silence unused import on some cfgs
    }
}

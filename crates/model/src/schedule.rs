//! Schedule policies: priority orders fed to the list-schedule evaluator.
//!
//! A "schedule" in the paper's sense (§IV-A) is a per-device execution
//! order.  We represent it as a *priority rank per task* (lower = earlier);
//! the evaluator pops ready tasks in rank order, which induces the device
//! orders while always respecting precedence.
//!
//! [`OrderTables`] precomputes, for one fixed rank vector, everything the
//! windowed re-simulation machinery needs: the structural pop order (which
//! is mapping-independent — see the field docs), its inverse, and the
//! earliest pop position at which each task's device assignment is read.
//! [`ReportSchedules`] bundles the orders of the paper's reporting metric
//! (the breadth-first schedule plus `k` seeded random topological
//! schedules) so the candidate engine can checkpoint and window *every*
//! report schedule, not just the BFS one.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spmap_graph::gen::random_topo_order;
use spmap_graph::{ops, NodeId, TaskGraph};

/// How to derive the priority order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Breadth-first layers, ties broken by node id — the paper's
    /// deterministic baseline schedule.
    Bfs,
    /// A seeded uniformly random topological order.
    RandomTopo {
        /// RNG seed for the order.
        seed: u64,
    },
}

/// Compute the priority rank of every node under `policy`
/// (`rank[node] = position`, lower runs earlier among ready tasks).
pub fn priority_ranks(graph: &TaskGraph, policy: SchedulePolicy) -> Vec<u32> {
    match policy {
        SchedulePolicy::Bfs => {
            let layers = ops::bfs_layers(graph);
            let mut order: Vec<u32> = (0..graph.node_count() as u32).collect();
            order.sort_by_key(|&v| (layers[v as usize], v));
            invert(&order)
        }
        SchedulePolicy::RandomTopo { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let order = random_topo_order(graph, &mut rng);
            let order: Vec<u32> = order.into_iter().map(|v| v.0).collect();
            invert(&order)
        }
    }
}

fn invert(order: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; order.len()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    rank
}

/// Precomputed pop-order tables of one fixed priority-rank vector.
///
/// The list-schedule evaluator pops the minimum-`(rank, id)` task among
/// the *structurally* ready ones (all predecessors processed) — readiness
/// never depends on times or on the mapping.  The whole pop sequence is
/// therefore a pure function of `(graph, ranks)` and can be precomputed
/// with Kahn's algorithm using the same heap.  This is what makes
/// windowed re-simulation possible for *any* schedule, not just the
/// breadth-first one: a candidate mapping's schedule is bit-identical to
/// the base mapping's schedule before the first pop position that reads a
/// remapped task's device assignment.
#[derive(Clone, Debug)]
pub struct OrderTables {
    /// The rank vector itself (`rank[node]`, lower runs earlier).
    ranks: Vec<u32>,
    /// The structural pop order: `pop_order[i]` is the `i`-th task popped.
    pop_order: Vec<u32>,
    /// Inverse of `pop_order`: `pop_pos[v]` is when `v` is processed.
    pop_pos: Vec<u32>,
    /// The earliest pop position at which the simulation reads task `v`'s
    /// device assignment: `min(pop_pos[v], pop_pos of v's predecessors)`
    /// (a predecessor's out-edge loop reads the consumer's device for the
    /// transfer).
    earliest_read: Vec<u32>,
    /// `true` when this order was built from [`SchedulePolicy::Bfs`].
    /// The pop order of the BFS policy is deterministic per graph, so
    /// any BFS-flagged order equals the one `EvalTables` renumbers its
    /// arrays by — which is what lets the evaluator run BFS replays as
    /// a straight sequential scan and store suffix-sparse snapshots.
    is_bfs: bool,
}

impl OrderTables {
    /// Precompute the pop tables of `ranks` on `graph`.
    pub fn new(graph: &TaskGraph, ranks: Vec<u32>) -> Self {
        let n = graph.node_count();
        debug_assert_eq!(ranks.len(), n);
        let mut pop_order = Vec::with_capacity(n);
        let mut indeg: Vec<u32> = graph.nodes().map(|v| graph.in_degree(v) as u32).collect();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::with_capacity(n);
        for v in graph.nodes() {
            if indeg[v.index()] == 0 {
                heap.push(Reverse((ranks[v.index()], v.0)));
            }
        }
        while let Some(Reverse((_, vi))) = heap.pop() {
            pop_order.push(vi);
            for w in graph.successors(NodeId(vi)) {
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    heap.push(Reverse((ranks[w.index()], w.0)));
                }
            }
        }
        debug_assert_eq!(pop_order.len(), n, "graph must be acyclic");
        let mut pop_pos = vec![0u32; n];
        for (i, &v) in pop_order.iter().enumerate() {
            pop_pos[v as usize] = i as u32;
        }
        let earliest_read: Vec<u32> = graph
            .nodes()
            .map(|v| {
                graph
                    .predecessors(v)
                    .map(|u| pop_pos[u.index()])
                    .fold(pop_pos[v.index()], u32::min)
            })
            .collect();
        Self {
            ranks,
            pop_order,
            pop_pos,
            earliest_read,
            is_bfs: false,
        }
    }

    /// Pop tables for `policy` on `graph`.
    pub fn for_policy(graph: &TaskGraph, policy: SchedulePolicy) -> Self {
        let mut t = Self::new(graph, priority_ranks(graph, policy));
        t.is_bfs = matches!(policy, SchedulePolicy::Bfs);
        t
    }

    /// `true` when this order is the deterministic breadth-first
    /// schedule (built via [`Self::for_policy`] with
    /// [`SchedulePolicy::Bfs`]).  A raw [`Self::new`] never carries the
    /// flag, even for BFS-equal ranks — the flag is a *capability*
    /// marker (sequential replay, suffix snapshots), and losing it only
    /// costs speed, never correctness.
    #[inline]
    pub fn is_bfs(&self) -> bool {
        self.is_bfs
    }

    /// The priority-rank vector this order was built from.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The structural pop order (`pop_order[i]` = `i`-th task popped).
    #[inline]
    pub fn pop_order(&self) -> &[u32] {
        &self.pop_order
    }

    /// The pop position at which task `n` is scheduled.
    #[inline]
    pub fn pop_position(&self, n: NodeId) -> usize {
        self.pop_pos[n.index()] as usize
    }

    /// The earliest pop position at which the simulation reads `n`'s
    /// device assignment (see the `earliest_read` field).
    #[inline]
    pub fn earliest_read_pos(&self, n: NodeId) -> usize {
        self.earliest_read[n.index()] as usize
    }

    /// The exact (latest sound) window start of a candidate that
    /// differs from a base mapping in exactly the nodes of `changed`:
    /// the minimum earliest-read position over them.  The base
    /// schedule's state is bit-identical before that position, so a
    /// windowed replay from it reproduces a from-scratch simulation.
    /// An empty delta yields `0` (replay everything — always sound).
    #[inline]
    pub fn window_start_over(&self, changed: impl Iterator<Item = NodeId>) -> usize {
        changed
            .map(|v| self.earliest_read_pos(v))
            .min()
            .unwrap_or(0)
    }

    /// Number of tasks this order schedules.
    #[inline]
    pub fn len(&self) -> usize {
        self.pop_order.len()
    }

    /// `true` for the empty graph.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pop_order.is_empty()
    }
}

/// The fixed schedule set of the paper's reporting metric (§IV-A): the
/// breadth-first schedule (index 0) followed by `random_schedules` seeded
/// random topological schedules (seeds `seed`, `seed+1`, …), each with
/// its pop tables precomputed for windowed re-simulation.
///
/// The rank vectors are exactly the ones
/// [`crate::Evaluator::report_makespan`] derives on the fly, so makespans
/// computed through this set are bit-identical to the reference metric.
#[derive(Clone, Debug)]
pub struct ReportSchedules {
    orders: Vec<OrderTables>,
    random_schedules: usize,
    seed: u64,
}

impl ReportSchedules {
    /// Build the schedule set on `graph`: BFS plus `random_schedules`
    /// random topological orders seeded `seed + i`.
    pub fn new(graph: &TaskGraph, random_schedules: usize, seed: u64) -> Self {
        let mut orders = Vec::with_capacity(random_schedules + 1);
        orders.push(OrderTables::for_policy(graph, SchedulePolicy::Bfs));
        for i in 0..random_schedules {
            orders.push(OrderTables::for_policy(
                graph,
                SchedulePolicy::RandomTopo {
                    seed: seed.wrapping_add(i as u64),
                },
            ));
        }
        Self {
            orders,
            random_schedules,
            seed,
        }
    }

    /// The BFS-only schedule set (the optimizers' classic inner loop).
    pub fn bfs_only(graph: &TaskGraph) -> Self {
        Self::new(graph, 0, 0)
    }

    /// Total number of schedules (1 + random count); never zero.
    #[inline]
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// `false` always — the BFS schedule is always present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Number of random schedules (`len() - 1`).
    #[inline]
    pub fn random_schedules(&self) -> usize {
        self.random_schedules
    }

    /// Base seed of the random schedules.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pop tables of schedule `s` (0 = BFS).
    #[inline]
    pub fn order(&self, s: usize) -> &OrderTables {
        &self.orders[s]
    }

    /// Iterate over all schedule orders, BFS first.
    pub fn iter(&self) -> impl Iterator<Item = &OrderTables> {
        self.orders.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{fig1_graph, random_sp_graph, SpGenConfig};
    use spmap_graph::NodeId;

    #[test]
    fn bfs_ranks_respect_layers() {
        let g = fig1_graph(1.0);
        let ranks = priority_ranks(&g, SchedulePolicy::Bfs);
        // Source (node 0) first.
        assert_eq!(ranks[0], 0);
        // Sink (node 5) has the deepest layer, so the highest rank.
        assert_eq!(ranks[5], 5);
        // Every edge goes from a lower to a higher BFS layer here, so rank
        // must increase along edges.
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(ranks[edge.src.index()] < ranks[edge.dst.index()]);
        }
    }

    #[test]
    fn random_ranks_are_topological_and_seeded() {
        let g = random_sp_graph(&SpGenConfig::new(40, 4));
        let a = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 1 });
        let b = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 1 });
        let c = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(a[edge.src.index()] < a[edge.dst.index()]);
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = random_sp_graph(&SpGenConfig::new(25, 9));
        let ranks = priority_ranks(&g, SchedulePolicy::Bfs);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..g.node_count() as u32).collect();
        assert_eq!(sorted, expect);
        let _ = NodeId(0); // silence unused import on some cfgs
    }

    /// The pop order of an `OrderTables` must be a topological order whose
    /// inverse is consistent, and `earliest_read` must never exceed a
    /// node's own pop position.
    fn check_order(g: &TaskGraph, order: &OrderTables) {
        assert_eq!(order.len(), g.node_count());
        let mut seen = vec![false; g.node_count()];
        for &v in order.pop_order() {
            assert!(!seen[v as usize], "pop order repeats node {v}");
            seen[v as usize] = true;
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(
                order.pop_position(edge.src) < order.pop_position(edge.dst),
                "pop order violates edge {:?}",
                edge
            );
        }
        for v in g.nodes() {
            assert!(order.earliest_read_pos(v) <= order.pop_position(v));
            assert_eq!(
                order.pop_order()[order.pop_position(v)] as usize,
                v.index(),
                "pop_pos must invert pop_order"
            );
        }
    }

    #[test]
    fn order_tables_are_topological_for_any_policy() {
        for seed in [3u64, 8, 21] {
            let g = random_sp_graph(&SpGenConfig::new(30, seed));
            check_order(&g, &OrderTables::for_policy(&g, SchedulePolicy::Bfs));
            check_order(
                &g,
                &OrderTables::for_policy(&g, SchedulePolicy::RandomTopo { seed }),
            );
        }
    }

    #[test]
    fn report_schedules_reproduce_the_reference_ranks() {
        let g = random_sp_graph(&SpGenConfig::new(35, 5));
        let set = ReportSchedules::new(&g, 3, 42);
        assert_eq!(set.len(), 4);
        assert_eq!(set.random_schedules(), 3);
        assert_eq!(set.seed(), 42);
        assert_eq!(
            set.order(0).ranks(),
            priority_ranks(&g, SchedulePolicy::Bfs)
        );
        for i in 0..3u64 {
            assert_eq!(
                set.order(1 + i as usize).ranks(),
                priority_ranks(&g, SchedulePolicy::RandomTopo { seed: 42 + i }),
                "random schedule {i} must use seed + {i}"
            );
        }
        for order in set.iter() {
            check_order(&g, order);
        }
    }

    #[test]
    fn bfs_only_set_has_one_schedule() {
        let g = random_sp_graph(&SpGenConfig::new(15, 2));
        let set = ReportSchedules::bfs_only(&g);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        assert_eq!(
            set.order(0).ranks(),
            priority_ranks(&g, SchedulePolicy::Bfs)
        );
    }
}

//! Owned, shareable evaluation artifacts and their content-addressed
//! cache.
//!
//! [`EvalTables`] borrows its graph and platform (`EvalTables<'g>`),
//! which is the right shape for one mapper run on one caller's data —
//! but a long-lived mapping service wants to *share* the expensive
//! table build across requests that submit the same graph.  An
//! [`EvalArtifact`] owns graph, platform and tables together behind an
//! `Arc`, so any number of concurrent requests can evaluate against one
//! immutable build.
//!
//! ## Cache-key soundness
//!
//! Artifacts are addressed by [`artifact_key`], which chains
//! [`graph_fingerprint`] and [`platform_fingerprint`] (both covering
//! exactly the inputs `EvalTables` reads — task attributes, edge lists
//! in semantic order, device specs, the link table) with the
//! [`Numbering`] the tables were laid out under.  Everything that can
//! change a table entry changes the key; names, which never reach the
//! evaluator, do not.  A 128-bit collision (birthday bound ≈ `k²/2^129`
//! over `k` distinct graphs) would reuse a wrong-but-deterministic
//! table — the same trade the mapping memo already makes.
//!
//! ## Eviction
//!
//! [`ArtifactCache`] is a byte-budgeted LRU in the mold of the engine's
//! `BoundedMemo`: entries carry a monotone use stamp and eviction drops
//! the stalest entries until the budget holds (always keeping the entry
//! just inserted, so a single oversized artifact still serves its
//! request).  Storage is a plain `Vec` scanned linearly — the cache
//! holds at most a few dozen distinct (graph, platform) builds, the
//! `u128` key compare is trivial next to a table build, and a `Vec`
//! keeps iteration deterministic without hash-order pragmas.

use std::sync::Arc;

use spmap_graph::TaskGraph;

use crate::eval::{EvalTables, Numbering};
use crate::fingerprint::{graph_fingerprint, platform_fingerprint};
use crate::platform::Platform;

/// Chain two content fingerprints and a numbering tag into one cache
/// key.  Chained (not XORed) so swapping the graph and platform
/// contributions can never collide.
pub fn artifact_key(graph: &TaskGraph, platform: &Platform, numbering: Numbering) -> u128 {
    let g = graph_fingerprint(graph);
    let p = platform_fingerprint(platform);
    let tag = match numbering {
        Numbering::Identity => 0x1d_u128,
        Numbering::PopOrder => 0x90_u128,
    };
    // 128-bit mixing via multiply-rotate chaining, seeded per lane.
    let rot = |x: u128, k: u32| x.rotate_left(k);
    rot(g, 17)
        .wrapping_mul(0x2d35_8dcc_aa6c_78a5_f4a7_c159_9e37_79b9)
        .wrapping_add(rot(p, 71))
        .wrapping_mul(0x8bb8_4b93_962e_acc9_d192_ed03_d1b5_4a33)
        .wrapping_add(tag)
}

/// Re-key an artifact key under a device-availability mask (bit `i` set
/// = device `i` usable).  A remapping session that loses or regains a
/// device keeps its [`EvalTables`] bit-for-bit — an avoided device
/// contributes no exec, link or area term, so restricting the candidate
/// device list is exact without any platform surgery — but the *session
/// identity* changes: two sessions over the same platform with
/// different availability must never be confused by observers keying on
/// the artifact.  The full mask (all `device_count` low bits set)
/// returns `base` unchanged, so an untouched session keeps the plain
/// [`artifact_key`].
pub fn masked_artifact_key(base: u128, available_mask: u64, device_count: usize) -> u128 {
    let full = if device_count >= 64 {
        u64::MAX
    } else {
        (1u64 << device_count) - 1
    };
    if available_mask & full == full {
        return base;
    }
    base.rotate_left(29)
        .wrapping_mul(0x2d35_8dcc_aa6c_78a5_f4a7_c159_9e37_79b9)
        .wrapping_add((available_mask & full) as u128)
        .wrapping_mul(0x8bb8_4b93_962e_acc9_d192_ed03_d1b5_4a33)
}

/// An owned evaluation build: the graph, the platform and the
/// [`EvalTables`] constructed from them, packaged so the borrowing
/// tables can be shared across threads and outlive the request that
/// built them.
pub struct EvalArtifact {
    /// Declared (and therefore dropped) before the `Arc`s below — the
    /// tables' internal references must die first.
    tables: EvalTables<'static>,
    /// Keep-alive owners of the data `tables` borrows.  Never exposed
    /// mutably and never replaced; the artifact's accessors reborrow
    /// them at `&self` lifetime.
    graph: Arc<TaskGraph>,
    platform: Arc<Platform>,
    key: u128,
}

impl EvalArtifact {
    /// Build the tables for `(graph, platform, numbering)` and package
    /// them as a shareable artifact.
    pub fn build(graph: Arc<TaskGraph>, platform: Arc<Platform>, numbering: Numbering) -> Self {
        let key = artifact_key(&graph, &platform, numbering);
        // SAFETY: the `'static` here is a private loan, not a promise.
        // The references point into `Arc` heap allocations whose
        // addresses are stable for the `Arc`s' lifetime; both `Arc`s
        // are stored in the same struct and never swapped or exposed
        // mutably, so they outlive `tables` (declared first, dropped
        // first).  No accessor leaks the `'static` lifetime: `tables()`
        // reborrows at `&self`, shrinking it via covariance.
        let (g, p) = unsafe {
            (
                &*(Arc::as_ptr(&graph)),
                &*(Arc::as_ptr(&platform)) as &'static Platform,
            )
        };
        let tables = EvalTables::with_numbering(g, p, numbering);
        Self {
            tables,
            graph,
            platform,
            key,
        }
    }

    /// The shared evaluation tables, reborrowed at the artifact's
    /// lifetime (covariance shrinks the internal `'static` loan).
    #[inline]
    pub fn tables(&self) -> &EvalTables<'_> {
        &self.tables
    }

    /// The owned graph.
    #[inline]
    pub fn graph(&self) -> &Arc<TaskGraph> {
        &self.graph
    }

    /// The owned platform.
    #[inline]
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The content key this artifact is cached under.
    #[inline]
    pub fn key(&self) -> u128 {
        self.key
    }

    /// Approximate heap footprint (tables plus graph/platform payload),
    /// the unit of the cache budget.
    pub fn approx_bytes(&self) -> usize {
        let graph_bytes = self.graph.node_count() * std::mem::size_of::<spmap_graph::Task>()
            + self.graph.edge_count() * (std::mem::size_of::<spmap_graph::Edge>() + 8);
        let platform_bytes = self.platform.device_count() * 160;
        self.tables.table_bytes() + graph_bytes + platform_bytes
    }
}

/// Counters of one [`ArtifactCache`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller builds and inserts).
    pub misses: u64,
    /// Artifacts evicted to hold the byte budget.
    pub evictions: u64,
    /// High-water mark of resident bytes.
    pub peak_bytes: usize,
    /// High-water mark of resident artifacts.
    pub peak_entries: usize,
}

struct CacheEntry {
    key: u128,
    artifact: Arc<EvalArtifact>,
    /// Monotone last-use stamp (the LRU order).
    stamp: u64,
    bytes: usize,
}

/// A byte-budgeted, content-addressed LRU of [`EvalArtifact`]s.  Not
/// internally synchronized — the service wraps it in a `Mutex` and
/// drops the lock while building a missing artifact.
pub struct ArtifactCache {
    entries: Vec<CacheEntry>,
    clock: u64,
    budget_bytes: usize,
    cur_bytes: usize,
    stats: ArtifactCacheStats,
}

/// Default artifact-cache budget: enough for dozens of mid-size builds
/// while bounding a service's steady-state footprint.
pub const DEFAULT_ARTIFACT_BUDGET_BYTES: usize = 64 << 20;

impl ArtifactCache {
    /// An empty cache holding at most ~`budget_bytes` of artifacts
    /// (`0` selects [`DEFAULT_ARTIFACT_BUDGET_BYTES`]).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: Vec::new(),
            clock: 0,
            budget_bytes: if budget_bytes == 0 {
                DEFAULT_ARTIFACT_BUDGET_BYTES
            } else {
                budget_bytes
            },
            cur_bytes: 0,
            stats: ArtifactCacheStats::default(),
        }
    }

    /// The artifact cached under `key`, refreshing its LRU stamp.
    pub fn lookup(&mut self, key: u128) -> Option<Arc<EvalArtifact>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.stamp = clock;
                self.stats.hits += 1;
                Some(Arc::clone(&e.artifact))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert `artifact` under its own key, evicting
    /// least-recently-used entries until the budget holds (the new
    /// entry itself is never evicted).  A concurrent builder may have
    /// inserted the same key while this caller built without the lock;
    /// the existing entry wins so every holder shares one build.
    pub fn insert(&mut self, artifact: Arc<EvalArtifact>) -> Arc<EvalArtifact> {
        self.clock += 1;
        let key = artifact.key();
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.stamp = self.clock;
            return Arc::clone(&e.artifact);
        }
        let bytes = artifact.approx_bytes();
        self.entries.push(CacheEntry {
            key,
            artifact: Arc::clone(&artifact),
            stamp: self.clock,
            bytes,
        });
        self.cur_bytes += bytes;
        while self.cur_bytes > self.budget_bytes && self.entries.len() > 1 {
            // Evict the stalest entry; stamps are unique, so the
            // minimum is unambiguous and scan order cannot matter.
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("entries is non-empty");
            let evicted = self.entries.swap_remove(oldest);
            self.cur_bytes -= evicted.bytes;
            self.stats.evictions += 1;
        }
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.cur_bytes);
        self.stats.peak_entries = self.stats.peak_entries.max(self.entries.len());
        artifact
    }

    /// Resident artifact count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.cur_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ArtifactCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::{GraphBuilder, Task};

    fn chain_graph(n: usize, area: f64) -> Arc<TaskGraph> {
        let mut b = GraphBuilder::new();
        let first = b.add_task(Task {
            area,
            ..Task::default()
        });
        let mut prev = first;
        for _ in 1..n {
            let v = b.add_task(Task {
                area,
                ..Task::default()
            });
            b.add_edge(prev, v, 64.0).unwrap();
            prev = v;
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn artifact_tables_match_a_direct_build() {
        let graph = chain_graph(12, 1.0);
        let platform = Arc::new(Platform::reference());
        let art = EvalArtifact::build(
            Arc::clone(&graph),
            Arc::clone(&platform),
            Numbering::PopOrder,
        );
        let direct = EvalTables::with_numbering(&graph, &platform, Numbering::PopOrder);
        assert_eq!(art.tables().exec_table(), direct.exec_table());
        assert_eq!(art.tables().node_count(), 12);
        assert_eq!(
            art.key(),
            artifact_key(&graph, &platform, Numbering::PopOrder)
        );
    }

    #[test]
    fn artifact_key_separates_numbering_and_content() {
        let graph = chain_graph(8, 1.0);
        let platform = Arc::new(Platform::reference());
        let k1 = artifact_key(&graph, &platform, Numbering::PopOrder);
        assert_ne!(
            k1,
            artifact_key(&graph, &platform, Numbering::Identity),
            "numbering changes table layout, so it must change the key"
        );
        assert_ne!(
            k1,
            artifact_key(&chain_graph(8, 2.0), &platform, Numbering::PopOrder)
        );
        assert_ne!(
            k1,
            artifact_key(&graph, &Arc::new(Platform::cpu_only()), Numbering::PopOrder)
        );
    }

    #[test]
    fn cache_hits_and_refreshes_lru() {
        let platform = Arc::new(Platform::reference());
        let mut cache = ArtifactCache::new(usize::MAX);
        let a = Arc::new(EvalArtifact::build(
            chain_graph(6, 1.0),
            Arc::clone(&platform),
            Numbering::PopOrder,
        ));
        assert!(cache.lookup(a.key()).is_none());
        cache.insert(Arc::clone(&a));
        let got = cache.lookup(a.key()).expect("cached");
        assert!(Arc::ptr_eq(&got, &a), "one shared build");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cache_evicts_stalest_under_budget_but_keeps_newest() {
        let platform = Arc::new(Platform::reference());
        let arts: Vec<Arc<EvalArtifact>> = (0..4)
            .map(|i| {
                Arc::new(EvalArtifact::build(
                    chain_graph(6 + i, 1.0),
                    Arc::clone(&platform),
                    Numbering::PopOrder,
                ))
            })
            .collect();
        // Budget of one artifact: every insert evicts the previous one.
        let mut cache = ArtifactCache::new(arts[0].approx_bytes());
        for a in &arts {
            cache.insert(Arc::clone(a));
            assert_eq!(cache.len(), 1, "budget holds exactly the newest");
            assert!(cache.lookup(a.key()).is_some());
        }
        assert_eq!(cache.stats().evictions, 3);
        assert!(cache.lookup(arts[0].key()).is_none(), "stalest evicted");

        // Roomier budget: the LRU victim is the *unused* entry.
        let mut cache = ArtifactCache::new(3 * arts[3].approx_bytes());
        for a in arts.iter().take(3) {
            cache.insert(Arc::clone(a));
        }
        cache.lookup(arts[0].key());
        cache.lookup(arts[1].key());
        cache.insert(Arc::clone(&arts[3])); // evicts arts[2], the stalest
        assert!(cache.lookup(arts[2].key()).is_none());
        assert!(cache.lookup(arts[0].key()).is_some());
        assert!(cache.lookup(arts[1].key()).is_some());
        assert!(cache.lookup(arts[3].key()).is_some());
    }

    #[test]
    fn masked_key_is_identity_on_full_mask_and_injective_per_mask() {
        let base = artifact_key(
            &chain_graph(6, 1.0),
            &Platform::reference(),
            Numbering::PopOrder,
        );
        let m = Platform::reference().device_count();
        let full = (1u64 << m) - 1;
        assert_eq!(masked_artifact_key(base, full, m), base);
        // High bits beyond the device count are ignored.
        assert_eq!(masked_artifact_key(base, u64::MAX, m), base);
        // Distinct availability masks get distinct keys, all != base.
        let mut seen = vec![base];
        for mask in 0..full {
            let k = masked_artifact_key(base, mask, m);
            assert!(!seen.contains(&k), "mask {mask:#b} collided");
            seen.push(k);
        }
    }

    #[test]
    fn insert_race_keeps_the_first_build() {
        let platform = Arc::new(Platform::reference());
        let graph = chain_graph(6, 1.0);
        let a = Arc::new(EvalArtifact::build(
            Arc::clone(&graph),
            Arc::clone(&platform),
            Numbering::PopOrder,
        ));
        let b = Arc::new(EvalArtifact::build(graph, platform, Numbering::PopOrder));
        let mut cache = ArtifactCache::new(usize::MAX);
        cache.insert(Arc::clone(&a));
        let winner = cache.insert(Arc::clone(&b));
        assert!(
            Arc::ptr_eq(&winner, &a),
            "the resident build wins a double insert"
        );
        assert_eq!(cache.len(), 1);
    }
}

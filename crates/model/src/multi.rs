//! Tests for platforms beyond the paper's reference triple: multiple
//! GPUs/FPGAs, asymmetric links.  The evaluator, mapper inputs and area
//! accounting must generalize — the paper's principle is explicitly
//! platform-agnostic ("regardless of the complexity of the scenario").

#[cfg(test)]
mod tests {
    use crate::eval::Evaluator;
    use crate::mapping::Mapping;
    use crate::platform::{Device, DeviceSpec, Link, Platform};
    use crate::DeviceId;
    use spmap_graph::gen::{chain, fork_join};
    use spmap_graph::NodeId;

    /// CPU + two GPUs + two FPGAs with distinct parameters.
    fn big_platform() -> Platform {
        let cpu = Device {
            name: "cpu".into(),
            spec: DeviceSpec::Cpu {
                cores: 16.0,
                core_throughput: 0.3e9,
            },
        };
        let gpu = |name: &str, eff: f64| Device {
            name: name.into(),
            spec: DeviceSpec::Gpu {
                cores: 2048.0,
                core_throughput: 0.08e9,
                dispatch_efficiency: eff,
                launch_latency: 10e-6,
                serial_throughput: 0.015e9,
            },
        };
        let fpga = |name: &str, area: f64| Device {
            name: name.into(),
            spec: DeviceSpec::Fpga {
                base_throughput: 0.02e9,
                max_streamability: 7.0,
                area_capacity: area,
                fill_fraction: 0.05,
            },
        };
        let mut p = Platform::new(
            vec![
                cpu,
                gpu("gpu0", 0.35),
                gpu("gpu1", 0.20),
                fpga("fpga0", 500.0),
                fpga("fpga1", 900.0),
            ],
            DeviceId(0),
        );
        p.set_link(
            DeviceId(0),
            DeviceId(1),
            Link {
                bandwidth: 12e9,
                latency: 20e-6,
            },
        );
        p.set_link(
            DeviceId(0),
            DeviceId(2),
            Link {
                bandwidth: 6e9,
                latency: 20e-6,
            },
        );
        p
    }

    fn set_attrs(g: &mut spmap_graph::TaskGraph, p: f64, s: f64, area: f64) {
        for v in 0..g.node_count() {
            let t = g.task_mut(NodeId(v as u32));
            t.complexity = 8.0;
            t.data_points = 1e7;
            t.parallelizability = p;
            t.streamability = s;
            t.area = area;
        }
    }

    #[test]
    fn per_fpga_area_budgets_are_independent() {
        let mut g = fork_join(4, 1e6);
        set_attrs(&mut g, 0.0, 6.0, 400.0);
        let p = big_platform();
        let mut ev = Evaluator::new(&g, &p);
        // 2 tasks (800) on fpga1 (900): feasible; on fpga0 (500): not.
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(1), DeviceId(4));
        m.set(NodeId(2), DeviceId(4));
        assert!(ev.makespan_bfs(&m).is_some(), "fits fpga1");
        let mut m2 = Mapping::all_default(&g, &p);
        m2.set(NodeId(1), DeviceId(3));
        m2.set(NodeId(2), DeviceId(3));
        assert!(ev.makespan_bfs(&m2).is_none(), "overflows fpga0");
        // One on each: feasible.
        let mut m3 = Mapping::all_default(&g, &p);
        m3.set(NodeId(1), DeviceId(3));
        m3.set(NodeId(2), DeviceId(4));
        assert!(ev.makespan_bfs(&m3).is_some());
    }

    #[test]
    fn two_gpus_double_absorption() {
        // Two independent perfectly-parallel tasks: splitting them across
        // two GPUs beats queueing both on one.
        let mut g = fork_join(2, 1e6);
        set_attrs(&mut g, 1.0, 1.0, 10.0);
        let p = big_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut both_one = Mapping::all_default(&g, &p);
        both_one.set(NodeId(1), DeviceId(1));
        both_one.set(NodeId(2), DeviceId(1));
        let mut split = Mapping::all_default(&g, &p);
        split.set(NodeId(1), DeviceId(1));
        split.set(NodeId(2), DeviceId(2));
        let ms_one = ev.makespan_bfs(&both_one).unwrap();
        let ms_split = ev.makespan_bfs(&split).unwrap();
        assert!(ms_split <= ms_one + 1e-12);
    }

    #[test]
    fn streaming_is_per_fpga_not_cross_fpga() {
        let mut g = chain(2, 100e6);
        set_attrs(&mut g, 0.0, 6.0, 100.0);
        let p = big_platform();
        let mut ev = Evaluator::new(&g, &p);
        // Same FPGA: streams (consumer starts before producer finishes).
        let same = Mapping::from_vec(vec![DeviceId(3), DeviceId(3)]);
        let s1 = ev
            .simulate(&same, crate::schedule::SchedulePolicy::Bfs)
            .unwrap();
        assert!(s1.start[1] < s1.finish[0], "must stream");
        // Different FPGAs: a real transfer, no streaming.
        let cross = Mapping::from_vec(vec![DeviceId(3), DeviceId(4)]);
        let s2 = ev
            .simulate(&cross, crate::schedule::SchedulePolicy::Bfs)
            .unwrap();
        assert!(s2.start[1] >= s2.finish[0], "cross-FPGA must not stream");
    }

    #[test]
    fn mapper_stack_works_on_the_big_platform() {
        // End-to-end sanity on 5 devices through the public evaluator
        // path used by the mappers.
        let mut g = fork_join(6, 100e6);
        set_attrs(&mut g, 0.5, 5.0, 60.0);
        let p = big_platform();
        let mut ev = Evaluator::new(&g, &p);
        let cpu_only = ev.cpu_only_makespan();
        assert!(cpu_only > 0.0);
        for d in p.device_ids() {
            let mut m = Mapping::all_default(&g, &p);
            m.set(NodeId(1), d);
            let ms = ev.makespan_bfs(&m).expect("single move always feasible");
            assert!(ms.is_finite());
        }
    }
}

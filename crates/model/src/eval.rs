//! The model-based makespan evaluator.
//!
//! A deterministic list-schedule simulation in the spirit of the paper's
//! ref. 5: given a task graph, a platform, a mapping and a priority
//! order, it computes start/finish times for every task and thus the
//! makespan, in `O((V + E) log V)` with no allocations after construction.
//!
//! Semantics (DESIGN.md §6):
//!
//! * CPU/GPU devices execute their mapped tasks sequentially; a popped
//!   task starts at `max(device_free, data_ready)`.
//! * Cross-device edges pay `latency + bytes / bandwidth` **and occupy
//!   the directed link while in flight** (transfers between the same
//!   device pair serialize — the DMA channel is a resource).  Same-device
//!   edges are free.
//! * FPGA→FPGA edges *stream*: the consumer may start after the producer's
//!   pipeline-fill time `φ·exec(u)` instead of after its completion, but
//!   can never finish earlier than `finish(u) + φ·exec(v)`.
//! * The FPGA is a *dataflow* device: a task that is the designated
//!   streaming successor of its producer is a pipeline continuation and
//!   starts as soon as its data streams in (concurrently with its
//!   producer); every producer extends its pipeline through **one**
//!   successor (a pipeline is a chain, not a broadcast tree).  All other
//!   FPGA tasks are pipeline heads and queue on the device like on any
//!   other accelerator, so independent tasks and fan-out branches
//!   serialize — concurrency comes from chain pipelining, not from free
//!   spatial co-tenancy.  Streamed data is buffered, so non-designated
//!   consumers still see the early streamed data-ready times.  The area
//!   budget bounds what can be resident at all (violations make the
//!   mapping infeasible → `None`).
//!
//! The paper's reporting metric (§IV-A) — the minimum makespan over a
//! breadth-first schedule and `k` random schedules — is
//! [`Evaluator::report_makespan`]; the optimizers' inner loop uses the
//! breadth-first schedule only ([`Evaluator::makespan_bfs`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spmap_graph::{NodeId, TaskGraph};

use crate::cost::exec_time;
use crate::mapping::Mapping;
use crate::platform::Platform;
use crate::schedule::{priority_ranks, SchedulePolicy};
use crate::DeviceId;

/// Counters accumulated over an evaluator's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Number of complete makespan evaluations performed.
    pub evaluations: u64,
}

/// Detailed simulation result for inspection (examples, Gantt output).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Maximum finish time.
    pub makespan: f64,
}

/// Reusable makespan evaluator for one `(graph, platform)` pair.
pub struct Evaluator<'g> {
    graph: &'g TaskGraph,
    platform: &'g Platform,
    /// Execution-time table, node-major: `exec[n * m + d]`.
    exec: Vec<f64>,
    bfs_ranks: Vec<u32>,
    // --- reusable scratch ---
    indeg: Vec<u32>,
    data_ready: Vec<f64>,
    start: Vec<f64>,
    finish: Vec<f64>,
    device_free: Vec<f64>,
    /// `link_free[from * m + to]` — next time the directed link is idle.
    link_free: Vec<f64>,
    stream_input: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    stats: EvalStats,
}

impl<'g> Evaluator<'g> {
    /// Build an evaluator, pre-tabulating all `(task, device)` execution
    /// times and the breadth-first priority ranks.
    pub fn new(graph: &'g TaskGraph, platform: &'g Platform) -> Self {
        let n = graph.node_count();
        let m = platform.device_count();
        let mut exec = Vec::with_capacity(n * m);
        for v in graph.nodes() {
            for d in platform.device_ids() {
                exec.push(exec_time(platform, d, graph.task(v)));
            }
        }
        Self {
            graph,
            platform,
            exec,
            bfs_ranks: priority_ranks(graph, SchedulePolicy::Bfs),
            indeg: vec![0; n],
            data_ready: vec![0.0; n],
            start: vec![0.0; n],
            finish: vec![0.0; n],
            device_free: vec![0.0; m],
            link_free: vec![0.0; m * m],
            stream_input: vec![false; n],
            heap: BinaryHeap::with_capacity(n),
            stats: EvalStats::default(),
        }
    }

    /// The graph this evaluator simulates.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The platform this evaluator simulates.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Tabulated execution time of task `n` on device `d`.
    #[inline]
    pub fn exec_time(&self, n: NodeId, d: DeviceId) -> f64 {
        self.exec[n.index() * self.platform.device_count() + d.index()]
    }

    /// Lifetime evaluation counters.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Makespan under an explicit priority-rank vector, or `None` if the
    /// mapping violates an FPGA area budget.
    pub fn makespan_with_ranks(&mut self, mapping: &Mapping, ranks: &[u32]) -> Option<f64> {
        debug_assert_eq!(mapping.len(), self.graph.node_count());
        debug_assert_eq!(ranks.len(), self.graph.node_count());
        self.stats.evaluations += 1;
        if !self.area_feasible(mapping) {
            return None;
        }
        let g = self.graph;
        let m = self.platform.device_count();
        // Reset scratch.
        for v in g.nodes() {
            self.indeg[v.index()] = g.in_degree(v) as u32;
            self.data_ready[v.index()] = 0.0;
            self.finish[v.index()] = 0.0;
            self.start[v.index()] = 0.0;
            self.stream_input[v.index()] = false;
        }
        self.device_free.iter_mut().for_each(|t| *t = 0.0);
        self.link_free.iter_mut().for_each(|t| *t = 0.0);
        self.heap.clear();
        for v in g.nodes() {
            if self.indeg[v.index()] == 0 {
                self.heap.push(Reverse((ranks[v.index()], v.0)));
            }
        }
        let mut makespan: f64 = 0.0;
        let mut scheduled = 0usize;
        while let Some(Reverse((_, vi))) = self.heap.pop() {
            let v = NodeId(vi);
            scheduled += 1;
            let d = mapping.device(v);
            let ev = self.exec[v.index() * m + d.index()];
            let spatial = self.platform.is_fpga(d);
            let start = if spatial {
                if self.stream_input[v.index()] {
                    // Pipeline continuation: runs concurrently with its
                    // producers; the pipeline occupies the device until
                    // its last stage drains.
                    self.data_ready[v.index()]
                } else {
                    // Pipeline head: queues like on any other device.
                    self.device_free[d.index()].max(self.data_ready[v.index()])
                }
            } else {
                let s = self.device_free[d.index()].max(self.data_ready[v.index()]);
                self.device_free[d.index()] = s + ev;
                s
            };
            let fin = start + ev;
            if spatial {
                let free = &mut self.device_free[d.index()];
                *free = free.max(fin);
            }
            self.start[v.index()] = start;
            self.finish[v.index()] = fin;
            makespan = makespan.max(fin);
            let fill = self.platform.fill_fraction(d);
            // A pipeline extends through one successor only: grant the
            // queue-skip to the first same-FPGA out-edge.
            let mut stream_granted = false;
            for &e in g.out_edges(v) {
                let edge = g.edge(e);
                let w = edge.dst;
                let dw = mapping.device(w);
                let ready = if dw == d {
                    if spatial {
                        // Streaming: the consumer's data arrives after the
                        // pipeline fill, but it cannot finish before the
                        // producer (+ its own fill tail).
                        if !stream_granted {
                            self.stream_input[w.index()] = true;
                            stream_granted = true;
                        }
                        let ew = self.exec[w.index() * m + dw.index()];
                        (start + fill * ev).max(fin - (1.0 - fill) * ew)
                    } else {
                        fin
                    }
                } else {
                    // The transfer occupies the directed link: it starts
                    // when both the data and the link are available.
                    let tr = self.platform.transfer_time(edge.bytes, d, dw);
                    let link = &mut self.link_free[d.index() * m + dw.index()];
                    let t_start = fin.max(*link);
                    *link = t_start + tr;
                    t_start + tr
                };
                if ready > self.data_ready[w.index()] {
                    self.data_ready[w.index()] = ready;
                }
                self.indeg[w.index()] -= 1;
                if self.indeg[w.index()] == 0 {
                    self.heap.push(Reverse((ranks[w.index()], w.0)));
                }
            }
        }
        debug_assert_eq!(scheduled, g.node_count(), "graph must be acyclic");
        Some(makespan)
    }

    /// Makespan under the deterministic breadth-first schedule — the
    /// optimizers' inner-loop cost function.
    pub fn makespan_bfs(&mut self, mapping: &Mapping) -> Option<f64> {
        // Temporarily move the ranks out to satisfy the borrow checker
        // without cloning per call.
        let ranks = std::mem::take(&mut self.bfs_ranks);
        let result = self.makespan_with_ranks(mapping, &ranks);
        self.bfs_ranks = ranks;
        result
    }

    /// Makespan under an arbitrary policy.
    pub fn makespan(&mut self, mapping: &Mapping, policy: SchedulePolicy) -> Option<f64> {
        match policy {
            SchedulePolicy::Bfs => self.makespan_bfs(mapping),
            _ => {
                let ranks = priority_ranks(self.graph, policy);
                self.makespan_with_ranks(mapping, &ranks)
            }
        }
    }

    /// The paper's reporting metric (§IV-A): the minimum makespan over the
    /// breadth-first schedule and `random_schedules` seeded random
    /// topological schedules.
    pub fn report_makespan(
        &mut self,
        mapping: &Mapping,
        random_schedules: usize,
        seed: u64,
    ) -> Option<f64> {
        let mut best = self.makespan_bfs(mapping)?;
        for i in 0..random_schedules {
            let ranks = priority_ranks(
                self.graph,
                SchedulePolicy::RandomTopo {
                    seed: seed.wrapping_add(i as u64),
                },
            );
            if let Some(ms) = self.makespan_with_ranks(mapping, &ranks) {
                best = best.min(ms);
            }
        }
        Some(best)
    }

    /// Full start/finish detail under a policy (allocates; not for the hot
    /// loop).
    pub fn simulate(&mut self, mapping: &Mapping, policy: SchedulePolicy) -> Option<Schedule> {
        let makespan = self.makespan(mapping, policy)?;
        Some(Schedule {
            start: self.start.clone(),
            finish: self.finish.clone(),
            makespan,
        })
    }

    /// Makespan of the all-default (pure CPU) mapping — the baseline of
    /// every relative improvement.
    pub fn cpu_only_makespan(&mut self) -> f64 {
        let mapping = Mapping::all_default(self.graph, self.platform);
        self.makespan_bfs(&mapping)
            .expect("the default mapping uses no FPGA area")
    }

    fn area_feasible(&self, mapping: &Mapping) -> bool {
        let m = self.platform.device_count();
        // Cheap common case: no FPGA in the platform.
        if !(0..m).any(|d| self.platform.is_fpga(DeviceId(d as u32))) {
            return true;
        }
        let mut used = [0.0f64; 8];
        debug_assert!(m <= 8, "platforms larger than 8 devices need a Vec here");
        for v in self.graph.nodes() {
            let d = mapping.device(v);
            if self.platform.is_fpga(d) {
                used[d.index()] += self.graph.task(v).area;
            }
        }
        (0..m).all(|d| {
            let id = DeviceId(d as u32);
            !self.platform.is_fpga(id)
                || used[d] <= self.platform.device(id).area_capacity() + 1e-9
        })
    }
}

/// The paper's improvement measure: relative makespan improvement over the
/// pure-CPU baseline, truncated at zero ("we count deteriorations as zero
/// improvements").
#[inline]
pub fn relative_improvement(cpu_only: f64, mapped: f64) -> f64 {
    if cpu_only <= 0.0 {
        return 0.0;
    }
    ((cpu_only - mapped) / cpu_only).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, diamond, fork_join, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, ops, AugmentConfig};

    const CPU: DeviceId = DeviceId(0);
    const GPU: DeviceId = DeviceId(1);
    const FPGA: DeviceId = DeviceId(2);

    fn ref_platform() -> Platform {
        Platform::reference()
    }

    fn set_attrs(g: &mut TaskGraph, p: f64, s: f64) {
        for v in 0..g.node_count() {
            let t = g.task_mut(NodeId(v as u32));
            t.complexity = 8.0;
            t.data_points = 1e7;
            t.parallelizability = p;
            t.streamability = s;
            t.area = 64.0;
        }
    }

    #[test]
    fn cpu_chain_is_sum_of_exec_times() {
        let mut g = chain(5, 100e6);
        set_attrs(&mut g, 0.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::all_default(&g, &p);
        let ms = ev.makespan_bfs(&m).unwrap();
        let each = 8e7 / 0.3e9;
        assert!((ms - 5.0 * each).abs() < 1e-9);
    }

    #[test]
    fn single_device_makespan_is_total_work() {
        // With one device there is never idle time on a connected DAG.
        let mut g = diamond(100e6);
        set_attrs(&mut g, 0.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let ms = ev.cpu_only_makespan();
        let total: f64 = g.nodes().map(|v| ev.exec_time(v, CPU)).sum();
        assert!((ms - total).abs() < 1e-9);
    }

    #[test]
    fn cross_device_edge_pays_transfer() {
        let mut g = chain(2, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(1), GPU);
        let ms = ev.makespan_bfs(&m).unwrap();
        let expect = ev.exec_time(NodeId(0), CPU)
            + p.transfer_time(100e6, CPU, GPU)
            + ev.exec_time(NodeId(1), GPU);
        assert!((ms - expect).abs() < 1e-9);
    }

    #[test]
    fn offloading_independent_work_reduces_makespan() {
        let mut g = fork_join(4, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let base = ev.cpu_only_makespan();
        let mut m = Mapping::all_default(&g, &p);
        // Two of the four middle tasks to the GPU.
        m.set(NodeId(1), GPU);
        m.set(NodeId(2), GPU);
        let ms = ev.makespan_bfs(&m).unwrap();
        assert!(ms < base, "offload {ms} < cpu-only {base}");
    }

    #[test]
    fn fpga_serializes_independent_tasks() {
        // Four independent middle tasks on the FPGA are all pipeline
        // heads: they queue, exactly like on a temporal device
        // (concurrency on the FPGA comes from streaming chains only).
        let mut g = fork_join(4, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        for i in 1..=4 {
            m.set(NodeId(i), FPGA);
        }
        let ms = ev.makespan_bfs(&m).unwrap();
        let mid_time = ev.exec_time(NodeId(1), FPGA);
        let tr = p.transfer_time(100e6, CPU, FPGA);
        // Source + transfer + four serialized mids + transfer + sink.
        let expect = ev.exec_time(NodeId(0), CPU) + tr + 4.0 * mid_time + tr
            + ev.exec_time(NodeId(5), CPU);
        assert!(
            (ms - expect).abs() < 1e-9,
            "serialized makespan {ms} vs {expect}"
        );
    }

    #[test]
    fn fpga_pipeline_does_not_block_chain_members() {
        // A streaming chain on the FPGA plus one independent FPGA task:
        // the chain pipelines; the independent task queues behind the
        // pipeline head it was scheduled after.
        let mut g = spmap_graph::GraphBuilder::new();
        let a = g.add_task(spmap_graph::Task::default());
        let b = g.add_task(spmap_graph::Task::default());
        let c = g.add_task(spmap_graph::Task::default());
        g.add_edge(a, b, 100e6).unwrap();
        let mut g = g.build().unwrap();
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(3, FPGA);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let exec = ev.exec_time(NodeId(0), FPGA);
        // b streams behind a (starts at fill), c is an independent head.
        assert!((sched.start[b.index()] - 0.05 * exec).abs() < 1e-9);
        // c queues after one of the heads, not in parallel with both.
        assert!(sched.start[c.index()] >= exec - 1e-9 || sched.start[a.index()] >= exec - 1e-9);
        let _ = sched;
    }

    #[test]
    fn fpga_streaming_overlaps_chains() {
        let mut g = chain(6, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(6, FPGA);
        let ms = ev.makespan_bfs(&m).unwrap();
        let each = ev.exec_time(NodeId(0), FPGA);
        // Pipelined: first task + 5 fill increments, not 6 full tasks.
        let expect = each + 5.0 * 0.05 * each;
        assert!((ms - expect).abs() < 1e-9, "streamed {ms} vs {expect}");
        assert!(ms < 2.0 * each, "must be far below the serial sum");
    }

    #[test]
    fn streaming_consumer_never_finishes_before_producer() {
        let mut g = chain(2, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        // Make the consumer much cheaper than the producer.
        g.task_mut(NodeId(1)).complexity = 0.1;
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(2, FPGA);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        assert!(
            sched.finish[1] >= sched.finish[0],
            "consumer finish {} producer finish {}",
            sched.finish[1],
            sched.finish[0]
        );
    }

    #[test]
    fn area_violation_is_infeasible() {
        let mut g = chain(4, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        for v in 0..4 {
            g.task_mut(NodeId(v)).area = 700.0;
        }
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(4, FPGA);
        assert_eq!(ev.makespan_bfs(&m), None, "2800 > 1200 area");
        let m2 = Mapping::uniform(4, CPU);
        assert!(ev.makespan_bfs(&m2).is_some());
    }

    #[test]
    fn makespan_never_below_critical_path() {
        let mut g = random_sp_graph(&SpGenConfig::new(60, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        for trial in 0..20u64 {
            // Random-ish mapping over the three devices; FPGA may exceed
            // area (then makespan is None, which is fine).
            let mapping = Mapping::from_vec(
                (0..g.node_count())
                    .map(|i| DeviceId(((i as u64 * 7 + trial * 13) % 3) as u32))
                    .collect(),
            );
            let Some(ms) = ev.makespan_bfs(&mapping) else {
                continue;
            };
            // Lower bound: critical path of mapped exec times (edges >= 0),
            // discounted by the max streaming overlap factor to stay a
            // valid bound in the presence of FPGA pipelining.
            let lb = ops::critical_path(&g, |v| 0.05 * ev.exec_time(v, mapping.device(v)), |_| 0.0);
            assert!(ms + 1e-9 >= lb, "makespan {ms} < bound {lb}");
        }
    }

    #[test]
    fn report_makespan_is_min_over_schedules() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 8));
        augment(&mut g, &AugmentConfig::default(), 8);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mapping = Mapping::from_vec(
            (0..g.node_count())
                .map(|i| DeviceId((i % 2) as u32))
                .collect(),
        );
        let bfs = ev.makespan_bfs(&mapping).unwrap();
        let report = ev.report_makespan(&mapping, 20, 99).unwrap();
        assert!(report <= bfs + 1e-12);
        // Deterministic.
        assert_eq!(report, ev.report_makespan(&mapping, 20, 99).unwrap());
    }

    #[test]
    fn relative_improvement_truncates() {
        assert_eq!(relative_improvement(10.0, 5.0), 0.5);
        assert_eq!(relative_improvement(10.0, 12.0), 0.0);
        assert_eq!(relative_improvement(0.0, 1.0), 0.0);
    }

    #[test]
    fn eval_stats_count() {
        let g = chain(3, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::all_default(&g, &p);
        ev.makespan_bfs(&m);
        ev.makespan_bfs(&m);
        assert_eq!(ev.stats().evaluations, 2);
    }

    #[test]
    fn gpu_queue_serializes() {
        // Two independent tasks on the GPU must serialize.
        let mut g = fork_join(2, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(1), GPU);
        m.set(NodeId(2), GPU);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let (s1, f1) = (sched.start[1], sched.finish[1]);
        let (s2, f2) = (sched.start[2], sched.finish[2]);
        assert!(f1 <= s2 || f2 <= s1, "GPU tasks overlap: [{s1},{f1}] [{s2},{f2}]");
    }
}

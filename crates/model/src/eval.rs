//! The model-based makespan evaluator.
//!
//! A deterministic list-schedule simulation in the spirit of the paper's
//! ref. 5: given a task graph, a platform, a mapping and a priority
//! order, it computes start/finish times for every task and thus the
//! makespan, in `O((V + E) log V)` with no allocations after construction.
//!
//! ## Architecture: tables / scratch split
//!
//! The evaluator is split into two parts so that *many* evaluations can
//! run concurrently without rebuilding anything:
//!
//! * [`EvalTables`] — everything immutable about one `(graph, platform)`
//!   pair: the pre-tabulated `(task, device)` execution times, the
//!   breadth-first priority ranks, a flat CSR copy of the adjacency
//!   (successor ids + edge bytes), cached task areas, and the flattened
//!   link-parameter matrices.  `EvalTables` is `Sync`: share it by `&`
//!   across worker threads, or via `Arc` for `'static` contexts.
//! * [`EvalScratch`] — the small mutable working set of one in-flight
//!   simulation (ready heap, in-degrees, data-ready/start/finish times,
//!   device and link availability).  One scratch per worker; a scratch is
//!   reused across any number of evaluations and never reallocates.
//!
//! [`Evaluator`] bundles one of each behind the original single-threaded
//! API; the parallel candidate engine in `spmap-core` drives
//! [`EvalTables::makespan_bfs`] directly with per-worker scratches from
//! `spmap-par`.
//!
//! ## Simulation semantics (DESIGN.md §6)
//!
//! * CPU/GPU devices execute their mapped tasks sequentially; a popped
//!   task starts at `max(device_free, data_ready)`.
//! * Cross-device edges pay `latency + bytes / bandwidth` **and occupy
//!   the directed link while in flight** (transfers between the same
//!   device pair serialize — the DMA channel is a resource).  Same-device
//!   edges are free.
//! * FPGA→FPGA edges *stream*: the consumer may start after the producer's
//!   pipeline-fill time `φ·exec(u)` instead of after its completion, but
//!   can never finish earlier than `finish(u) + φ·exec(v)`.
//! * The FPGA is a *dataflow* device: a task that is the designated
//!   streaming successor of its producer is a pipeline continuation and
//!   starts as soon as its data streams in (concurrently with its
//!   producer); every producer extends its pipeline through **one**
//!   successor (a pipeline is a chain, not a broadcast tree).  All other
//!   FPGA tasks are pipeline heads and queue on the device like on any
//!   other accelerator, so independent tasks and fan-out branches
//!   serialize — concurrency comes from chain pipelining, not from free
//!   spatial co-tenancy.  Streamed data is buffered, so non-designated
//!   consumers still see the early streamed data-ready times.  The area
//!   budget bounds what can be resident at all (violations make the
//!   mapping infeasible → `None`).
//!
//! The simulation is a pure function of `(tables, mapping, ranks)`: the
//! same inputs produce bit-identical makespans on every thread and every
//! run.  The candidate engine's memoization (`spmap-core`) relies on
//! exactly this property.
//!
//! The paper's reporting metric (§IV-A) — the minimum makespan over a
//! breadth-first schedule and `k` random schedules — is
//! [`Evaluator::report_makespan`]; the optimizers' inner loop uses the
//! breadth-first schedule only ([`Evaluator::makespan_bfs`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use spmap_graph::{NodeId, TaskGraph};

use crate::cost::exec_time;
use crate::mapping::Mapping;
use crate::platform::Platform;
use crate::schedule::{priority_ranks, OrderTables, ReportSchedules, SchedulePolicy};
use crate::DeviceId;

/// Counters accumulated over a scratch's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Number of complete makespan evaluations performed.
    pub evaluations: u64,
    /// Schedule positions actually stepped (a full simulation steps
    /// `n`; a windowed replay steps only its suffix after the restored
    /// snapshot).  `evaluations * n - positions` is the work the
    /// windowing machinery really saved, *after* snapshot-granularity
    /// rounding.
    pub positions: u64,
}

/// Detailed simulation result for inspection (examples, Gantt output).
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time per task.
    pub start: Vec<f64>,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Maximum finish time.
    pub makespan: f64,
}

/// Node numbering of [`EvalTables`]' per-node arrays.
///
/// The numbering is a pure data-layout choice: results are bit-identical
/// under either variant (the permutation is applied once at table build
/// and inverted only at the [`Mapping`]/result boundary).  What changes
/// is memory behaviour at scale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Numbering {
    /// External node ids — the graph's own numbering.  Per-node scratch
    /// access follows the (arbitrary) id assignment of the generator.
    Identity,
    /// Breadth-first pop order: internal index = BFS pop position.  The
    /// dominant simulation order (every optimizer inner loop replays the
    /// BFS schedule) then touches `data_ready`/`start`/`finish` almost
    /// sequentially, successor updates land a few cache lines ahead, and
    /// a snapshot at pop position `p` only needs the `[p..n)` suffix of
    /// the per-node state (see [`ScheduleCheckpoints`]).
    #[default]
    PopOrder,
}

/// Default per-trail checkpoint byte budget (32 MiB) for
/// [`ScheduleCheckpoints::auto_interval_for`]: the snapshot interval
/// widens beyond the replay-balance heuristic once one trail's snapshots
/// would outgrow this.
pub const DEFAULT_CHECKPOINT_BUDGET_BYTES: usize = 32 << 20;

/// Immutable evaluation tables for one `(graph, platform)` pair.
///
/// Building the tables costs `O(V·M + E)` once; afterwards any number of
/// threads can evaluate mappings concurrently against a shared `&EvalTables`
/// with one [`EvalScratch`] each.
pub struct EvalTables<'g> {
    graph: &'g TaskGraph,
    platform: &'g Platform,
    /// Layout of every internal per-node array (`exec`, CSR, scratch).
    numbering: Numbering,
    /// External id → internal index (`perm[v_ext] = v_int`); identity
    /// under [`Numbering::Identity`].
    perm: Vec<u32>,
    /// Internal index → external id (`ext_of[v_int] = v_ext`).
    ext_of: Vec<u32>,
    /// Execution-time table, node-major: `exec[v_int * m + d]` —
    /// *internal* numbering.
    exec: Vec<f64>,
    /// Per-task minimum execution time over all devices (lower bounds).
    /// External numbering (bound accessors take `NodeId`s).
    min_exec: Vec<f64>,
    /// Per-task minimum *path span* over all devices: the least a task
    /// can contribute to any precedence path under any mapping —
    /// `min_d exec(v, d)` on temporal devices, `fill_d · exec(v, d)` on
    /// FPGAs (a streamed consumer still adds its pipeline-fill tail).
    min_span: Vec<f64>,
    /// Longest predecessor path into `v` (exclusive), using `min_span`.
    down_min: Vec<f64>,
    /// Longest successor path out of `v` (exclusive), using `min_span`.
    up_min: Vec<f64>,
    /// `up_min` permuted into internal numbering (the window cutoff test
    /// runs on internal indices).
    up_min_int: Vec<f64>,
    /// Pop tables of the breadth-first schedule.  Which task is popped
    /// next depends only on precedence structure and ranks — never on
    /// times or the mapping — so the whole sequence is precomputable.
    /// This is what makes windowed re-simulation possible; the same holds
    /// for *any* fixed rank vector (see [`OrderTables`]), which is how
    /// the report schedules get the same treatment.
    bfs: OrderTables,
    /// CSR out-adjacency in *internal* numbering: successors of internal
    /// node `v` are `out_dst[out_start[v]..out_start[v+1]]` (internal
    /// indices), with parallel `out_bytes`.  The per-node edge order is
    /// the graph's own out-edge order regardless of numbering — the FPGA
    /// streaming grant goes to the *first* same-device out-edge, so
    /// reordering edges would change semantics.
    out_start: Vec<u32>,
    out_dst: Vec<u32>,
    out_bytes: Vec<f64>,
    /// Initial in-degree per node (internal numbering).
    indeg_init: Vec<u32>,
    /// Cached `task.area` per node (external numbering — area accounting
    /// walks `Mapping::as_slice`).
    area: Vec<f64>,
    /// Per-device flags/parameters, indexed by device.
    is_fpga: Vec<bool>,
    fill: Vec<f64>,
    area_cap: Vec<f64>,
    /// Flattened link parameters: `link_lat[from * m + to]`, same for bw.
    link_lat: Vec<f64>,
    link_bw: Vec<f64>,
    any_fpga: bool,
}

impl<'g> EvalTables<'g> {
    /// Pre-tabulate all `(task, device)` execution times, the breadth-first
    /// priority ranks, and flat copies of adjacency and link parameters,
    /// using the default [`Numbering`] (pop order).
    pub fn new(graph: &'g TaskGraph, platform: &'g Platform) -> Self {
        Self::with_numbering(graph, platform, Numbering::default())
    }

    /// [`Self::new`] with an explicit per-node array [`Numbering`].
    /// Results are bit-identical under either numbering; `Identity`
    /// keeps the graph's own id layout (and forces dense snapshots —
    /// see [`ScheduleCheckpoints`]), `PopOrder` lays the arrays out in
    /// BFS pop order for near-sequential access at scale.
    pub fn with_numbering(
        graph: &'g TaskGraph,
        platform: &'g Platform,
        numbering: Numbering,
    ) -> Self {
        let n = graph.node_count();
        let m = platform.device_count();
        // Several hot paths (area accounting here, the candidate
        // engine's stack-allocated load buffers) are sized for small
        // device counts.  Fail loudly at construction instead of deep
        // inside a simulation.
        assert!(
            m <= 8,
            "platforms are limited to 8 devices (got {m}); widen the fixed-size \
             buffers in spmap-model/src/eval.rs and spmap-core/src/batch.rs to lift this"
        );
        // Execution times in *external* numbering first: the bound
        // tables (min_exec, min_span, down/up_min) are external, and the
        // permutation is not known until the BFS order exists.
        let mut exec_ext = Vec::with_capacity(n * m);
        let mut min_exec = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut best = f64::INFINITY;
            for d in platform.device_ids() {
                let e = exec_time(platform, d, graph.task(v));
                best = best.min(e);
                exec_ext.push(e);
            }
            min_exec.push(best);
        }
        // Precompute the breadth-first pop order: Kahn's algorithm with
        // the same (rank, id) min-heap the timed simulation uses — the
        // pop sequence is identical because readiness is structural.
        let bfs = OrderTables::for_policy(graph, SchedulePolicy::Bfs);
        // The internal node numbering: identity, or the BFS pop order so
        // the dominant replay order scans the per-node arrays forward.
        let (perm, ext_of): (Vec<u32>, Vec<u32>) = match numbering {
            Numbering::Identity => ((0..n as u32).collect(), (0..n as u32).collect()),
            Numbering::PopOrder => {
                let ext_of = bfs.pop_order().to_vec();
                let mut perm = vec![0u32; n];
                for (i, &v) in ext_of.iter().enumerate() {
                    perm[v as usize] = i as u32;
                }
                (perm, ext_of)
            }
        };
        let mut exec = vec![0.0; n * m];
        for (vi, &ve) in ext_of.iter().enumerate() {
            let ve = ve as usize;
            exec[vi * m..(vi + 1) * m].copy_from_slice(&exec_ext[ve * m..(ve + 1) * m]);
        }
        // CSR rows in internal numbering, destinations translated.  The
        // edges *within* one row keep the graph's out-edge order (the
        // FPGA streaming grant is order-sensitive).
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_dst = Vec::with_capacity(graph.edge_count());
        let mut out_bytes = Vec::with_capacity(graph.edge_count());
        out_start.push(0);
        for &ve in &ext_of {
            for &e in graph.out_edges(NodeId(ve)) {
                let edge = graph.edge(e);
                out_dst.push(perm[edge.dst.index()]);
                out_bytes.push(edge.bytes);
            }
            out_start.push(out_dst.len() as u32);
        }
        let mut link_lat = vec![0.0; m * m];
        let mut link_bw = vec![f64::INFINITY; m * m];
        for from in platform.device_ids() {
            for to in platform.device_ids() {
                if from != to {
                    let link = platform.link(from, to);
                    link_lat[from.index() * m + to.index()] = link.latency;
                    link_bw[from.index() * m + to.index()] = link.bandwidth;
                }
            }
        }
        let is_fpga: Vec<bool> = platform.device_ids().map(|d| platform.is_fpga(d)).collect();
        let mut min_span = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut best = f64::INFINITY;
            for d in platform.device_ids() {
                let e = exec_ext[v.index() * m + d.index()];
                let span = if is_fpga[d.index()] {
                    platform.fill_fraction(d) * e
                } else {
                    e
                };
                best = best.min(span);
            }
            min_span.push(best);
        }
        let topo = spmap_graph::ops::topo_order(graph).expect("task graphs are acyclic");
        let mut down_min = vec![0.0f64; n];
        let mut up_min = vec![0.0f64; n];
        for &v in &topo {
            let reach = down_min[v.index()] + min_span[v.index()];
            for w in graph.successors(v) {
                if reach > down_min[w.index()] {
                    down_min[w.index()] = reach;
                }
            }
        }
        for &v in topo.iter().rev() {
            let reach = up_min[v.index()] + min_span[v.index()];
            for u in graph.predecessors(v) {
                if reach > up_min[u.index()] {
                    up_min[u.index()] = reach;
                }
            }
        }
        let up_min_int = ext_of.iter().map(|&v| up_min[v as usize]).collect();
        let indeg_init = ext_of
            .iter()
            .map(|&v| graph.in_degree(NodeId(v)) as u32)
            .collect();
        Self {
            numbering,
            exec,
            min_exec,
            min_span,
            down_min,
            up_min,
            up_min_int,
            bfs,
            out_start,
            out_dst,
            out_bytes,
            indeg_init,
            perm,
            ext_of,
            area: graph.nodes().map(|v| graph.task(v).area).collect(),
            any_fpga: is_fpga.iter().any(|&f| f),
            fill: platform
                .device_ids()
                .map(|d| platform.fill_fraction(d))
                .collect(),
            area_cap: platform
                .device_ids()
                .map(|d| platform.device(d).area_capacity())
                .collect(),
            is_fpga,
            link_lat,
            link_bw,
            graph,
            platform,
        }
    }

    /// The graph these tables simulate.
    #[inline]
    pub fn graph(&self) -> &'g TaskGraph {
        self.graph
    }

    /// The platform these tables simulate.
    #[inline]
    pub fn platform(&self) -> &'g Platform {
        self.platform
    }

    /// Number of task nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.indeg_init.len()
    }

    /// Number of devices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.is_fpga.len()
    }

    /// Tabulated execution time of task `n` on device `d`.
    #[inline]
    pub fn exec_time(&self, n: NodeId, d: DeviceId) -> f64 {
        self.exec[self.perm[n.index()] as usize * self.device_count() + d.index()]
    }

    /// The full execution-time table, node-major (`[v_int * m + d]`) —
    /// **internal** numbering; translate external ids through
    /// [`Self::internal_index`].
    #[inline]
    pub fn exec_table(&self) -> &[f64] {
        &self.exec
    }

    /// The numbering these tables were built with.
    #[inline]
    pub fn numbering(&self) -> Numbering {
        self.numbering
    }

    /// Approximate heap footprint of the tables in bytes — the budget
    /// currency of the artifact cache (`spmap_model::ArtifactCache`).
    /// An estimate from element counts, not an allocator measurement;
    /// it only needs to rank artifacts proportionally to their size.
    pub fn table_bytes(&self) -> usize {
        let n = self.node_count();
        let m = self.device_count();
        let e = self.out_dst.len();
        let f64s = n * m          // exec
            + 5 * n               // min_exec, min_span, down_min, up_min, up_min_int
            + e                   // out_bytes
            + n                   // area
            + 2 * m               // fill, area_cap
            + 2 * m * m; // link_lat, link_bw
        let u32s = 2 * n          // perm, ext_of
            + (n + 1)             // out_start
            + e                   // out_dst
            + n                   // indeg_init
            + 2 * n; // bfs pop order + ranks (OrderTables)
        f64s * std::mem::size_of::<f64>() + u32s * std::mem::size_of::<u32>() + m
    }

    /// Internal array index of task `n` under this table's numbering.
    #[inline]
    pub fn internal_index(&self, n: NodeId) -> usize {
        self.perm[n.index()] as usize
    }

    /// `true` when BFS-schedule snapshots against these tables may use
    /// the suffix-sparse layout: under pop-order numbering, "not yet
    /// popped at position `p`" is exactly "internal index `>= p`", so a
    /// snapshot needs only the `[p..n)` suffix of the per-node state.
    #[inline]
    pub fn suffix_windows(&self) -> bool {
        matches!(self.numbering, Numbering::PopOrder)
    }

    /// `true` when replaying `order` against these tables is a straight
    /// sequential scan over the internal arrays (pop position == internal
    /// index) — the precondition for suffix-sparse snapshots under this
    /// order.
    #[inline]
    fn seq_order(&self, order: &OrderTables) -> bool {
        self.suffix_windows() && order.is_bfs()
    }

    /// Gather `mapping` into internal numbering for positions
    /// `from..n`, using `buf` as storage.  Under `Identity` the mapping
    /// slice *is* internal and is returned directly (no copy).
    #[inline]
    fn internal_devices<'a>(
        &self,
        buf: &'a mut [DeviceId],
        mapping: &'a Mapping,
        from: usize,
    ) -> &'a [DeviceId] {
        match self.numbering {
            Numbering::Identity => mapping.as_slice(),
            Numbering::PopOrder => {
                let ext = mapping.as_slice();
                for (slot, &ve) in buf[from..].iter_mut().zip(&self.ext_of[from..]) {
                    *slot = ext[ve as usize];
                }
                buf
            }
        }
    }

    /// Minimum execution time of task `n` over all devices.
    #[inline]
    pub fn min_exec_time(&self, n: NodeId) -> f64 {
        self.min_exec[n.index()]
    }

    /// The least path span task `n` can contribute under any mapping:
    /// `min_d exec(n, d)` for temporal devices, `fill · exec` for FPGAs.
    #[inline]
    pub fn min_span(&self, n: NodeId) -> f64 {
        self.min_span[n.index()]
    }

    /// Longest path of `min_span` contributions strictly before `n` plus
    /// strictly after `n`: adding `n`'s own (mapping-dependent) span
    /// yields a sound critical-path lower bound through `n` for *any*
    /// mapping — the engine's strongest pruning component.
    #[inline]
    pub fn path_floor(&self, n: NodeId) -> f64 {
        self.down_min[n.index()] + self.up_min[n.index()]
    }

    /// Pipeline-fill fraction of device `d` (0 for non-FPGAs).
    #[inline]
    pub fn fill_fraction(&self, d: DeviceId) -> f64 {
        self.fill[d.index()]
    }

    /// Longest successor path out of `n` (exclusive) under best-case
    /// spans; `finish(n) + up_min(n)` is a sound bound on the final
    /// makespan the moment `n` is scheduled — the window simulation's
    /// cutoff test.
    #[inline]
    pub fn up_min(&self, n: NodeId) -> f64 {
        self.up_min[n.index()]
    }

    /// The breadth-first pop position at which task `n` is scheduled
    /// (mapping-independent; see [`OrderTables`]).
    #[inline]
    pub fn pop_position(&self, n: NodeId) -> usize {
        self.bfs.pop_position(n)
    }

    /// The earliest breadth-first pop position at which the simulation
    /// reads `n`'s device assignment (see [`OrderTables`]).
    #[inline]
    pub fn earliest_read_pos(&self, n: NodeId) -> usize {
        self.bfs.earliest_read_pos(n)
    }

    /// The precomputed pop tables of the breadth-first schedule.
    #[inline]
    pub fn bfs_order(&self) -> &OrderTables {
        &self.bfs
    }

    /// Cached FPGA area demand of task `n`.
    #[inline]
    pub fn task_area(&self, n: NodeId) -> f64 {
        self.area[n.index()]
    }

    /// `true` if device `d` is a spatial dataflow device.
    #[inline]
    pub fn is_fpga_device(&self, d: DeviceId) -> bool {
        self.is_fpga[d.index()]
    }

    /// Area capacity of device `d` (0 for non-FPGAs).
    #[inline]
    pub fn area_capacity(&self, d: DeviceId) -> f64 {
        self.area_cap[d.index()]
    }

    /// The breadth-first priority ranks used by the optimizers' inner loop.
    #[inline]
    pub fn bfs_ranks(&self) -> &[u32] {
        self.bfs.ranks()
    }

    /// Transfer time for `bytes` moving `from -> to` (0 on-device), using
    /// the same arithmetic as [`Platform::transfer_time`] so results are
    /// bit-identical.
    #[inline]
    pub fn transfer_time(&self, bytes: f64, from: DeviceId, to: DeviceId) -> f64 {
        if from == to {
            0.0
        } else {
            let i = from.index() * self.device_count() + to.index();
            self.link_lat[i] + bytes / self.link_bw[i]
        }
    }

    /// `true` if `mapping` respects every FPGA's area budget.
    pub fn area_feasible(&self, mapping: &Mapping) -> bool {
        // Cheap common case: no FPGA in the platform.
        if !self.any_fpga {
            return true;
        }
        let m = self.device_count();
        let mut used = [0.0f64; 8];
        debug_assert!(m <= 8, "platforms larger than 8 devices need a Vec here");
        for (i, &d) in mapping.as_slice().iter().enumerate() {
            if self.is_fpga[d.index()] {
                used[d.index()] += self.area[i];
            }
        }
        (0..m).all(|d| !self.is_fpga[d] || used[d] <= self.area_cap[d] + 1e-9)
    }

    /// Makespan under an explicit priority-rank vector, or `None` if the
    /// mapping violates an FPGA area budget.  Pure function of
    /// `(self, mapping, ranks)` — any scratch yields the same bits.
    pub fn makespan_with_ranks(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        ranks: &[u32],
    ) -> Option<f64> {
        let n = self.node_count();
        let m = self.device_count();
        debug_assert_eq!(mapping.len(), n);
        debug_assert_eq!(ranks.len(), n);
        debug_assert_eq!(scratch.indeg.len(), n, "scratch sized for this graph");
        debug_assert_eq!(
            scratch.device_free.len(),
            m,
            "scratch sized for this platform"
        );
        scratch.stats.evaluations += 1;
        if !self.area_feasible(mapping) {
            return None;
        }
        scratch.stats.positions += n as u64;
        // Reset scratch.
        scratch.indeg.copy_from_slice(&self.indeg_init);
        scratch.data_ready.iter_mut().for_each(|t| *t = 0.0);
        scratch.start.iter_mut().for_each(|t| *t = 0.0);
        scratch.finish.iter_mut().for_each(|t| *t = 0.0);
        scratch.stream_input.iter_mut().for_each(|s| *s = false);
        scratch.device_free.iter_mut().for_each(|t| *t = 0.0);
        scratch.link_free.iter_mut().for_each(|t| *t = 0.0);
        scratch.heap.clear();
        // The ready heap stays keyed on *external* `(rank, id)` — the
        // pop sequence (and thus every bit of the result) is a function
        // of the rank vector alone, independent of the table numbering.
        // All keys are distinct (the id breaks ties), so heap contents
        // determine the pop order regardless of push order.
        for (vi, &deg) in scratch.indeg.iter().enumerate() {
            if deg == 0 {
                let ve = self.ext_of[vi];
                scratch.heap.push(Reverse((ranks[ve as usize], ve)));
            }
        }
        let devices = mapping.as_slice();
        let mut makespan: f64 = 0.0;
        let mut scheduled = 0usize;
        while let Some(Reverse((_, ve))) = scratch.heap.pop() {
            let v = self.perm[ve as usize] as usize;
            scheduled += 1;
            let d = devices[ve as usize];
            let ev = self.exec[v * m + d.index()];
            let spatial = self.is_fpga[d.index()];
            let start = if spatial {
                if scratch.stream_input[v] {
                    // Pipeline continuation: runs concurrently with its
                    // producers; the pipeline occupies the device until
                    // its last stage drains.
                    scratch.data_ready[v]
                } else {
                    // Pipeline head: queues like on any other device.
                    scratch.device_free[d.index()].max(scratch.data_ready[v])
                }
            } else {
                let s = scratch.device_free[d.index()].max(scratch.data_ready[v]);
                scratch.device_free[d.index()] = s + ev;
                s
            };
            let fin = start + ev;
            if spatial {
                let free = &mut scratch.device_free[d.index()];
                *free = free.max(fin);
            }
            scratch.start[v] = start;
            scratch.finish[v] = fin;
            makespan = makespan.max(fin);
            let fill = self.fill[d.index()];
            // A pipeline extends through one successor only: grant the
            // queue-skip to the first same-FPGA out-edge.
            let mut stream_granted = false;
            let lo = self.out_start[v] as usize;
            let hi = self.out_start[v + 1] as usize;
            for k in lo..hi {
                let w = self.out_dst[k] as usize;
                let we = self.ext_of[w] as usize;
                let dw = devices[we];
                let ready = if dw == d {
                    if spatial {
                        // Streaming: the consumer's data arrives after the
                        // pipeline fill, but it cannot finish before the
                        // producer (+ its own fill tail).
                        if !stream_granted {
                            scratch.stream_input[w] = true;
                            stream_granted = true;
                        }
                        let ew = self.exec[w * m + dw.index()];
                        (start + fill * ev).max(fin - (1.0 - fill) * ew)
                    } else {
                        fin
                    }
                } else {
                    // The transfer occupies the directed link: it starts
                    // when both the data and the link are available.
                    let li = d.index() * m + dw.index();
                    let tr = self.link_lat[li] + self.out_bytes[k] / self.link_bw[li];
                    let link = &mut scratch.link_free[li];
                    let t_start = fin.max(*link);
                    *link = t_start + tr;
                    t_start + tr
                };
                if ready > scratch.data_ready[w] {
                    scratch.data_ready[w] = ready;
                }
                scratch.indeg[w] -= 1;
                if scratch.indeg[w] == 0 {
                    scratch.heap.push(Reverse((ranks[we], we as u32)));
                }
            }
        }
        debug_assert_eq!(scheduled, n, "graph must be acyclic");
        Some(makespan)
    }

    /// Makespan under the deterministic breadth-first schedule — the
    /// optimizers' inner-loop cost function.
    #[inline]
    pub fn makespan_bfs(&self, scratch: &mut EvalScratch, mapping: &Mapping) -> Option<f64> {
        self.makespan_with_ranks(scratch, mapping, self.bfs.ranks())
    }

    /// One pop-order simulation step: process the task at *internal*
    /// index `v` and fold its finish time into `makespan`.  `devices`
    /// must be internal-numbered (see [`Self::internal_devices`]).  The
    /// arithmetic is the exact sequence of [`Self::makespan_with_ranks`],
    /// so heap-driven, checkpointed and windowed runs agree bit for bit
    /// — for any fixed schedule, not just the breadth-first one.
    ///
    /// `inline(always)`: every window/replay variant spends its whole
    /// life in this step; an out-of-line call (the inliner bails on the
    /// two-loop recording replay) costs measurable ns/position.
    #[inline(always)]
    fn sim_step(
        &self,
        scratch: &mut EvalScratch,
        devices: &[DeviceId],
        v: usize,
        makespan: &mut f64,
    ) -> f64 {
        // Read-bound checker for suffix checkpoints: a windowed replay
        // restored at `read_floor` must never touch per-node state below
        // it (see `ScheduleCheckpoints::restore`).
        #[cfg(feature = "strict-invariants")]
        assert!(
            v >= scratch.read_floor,
            "strict-invariants: replay stepped position {v} below its restore \
             floor {}",
            scratch.read_floor
        );
        let m = self.device_count();
        let d = devices[v];
        let ev = self.exec[v * m + d.index()];
        let spatial = self.is_fpga[d.index()];
        let start = if spatial {
            if scratch.stream_input[v] {
                scratch.data_ready[v]
            } else {
                scratch.device_free[d.index()].max(scratch.data_ready[v])
            }
        } else {
            let s = scratch.device_free[d.index()].max(scratch.data_ready[v]);
            scratch.device_free[d.index()] = s + ev;
            s
        };
        let fin = start + ev;
        if spatial {
            let free = &mut scratch.device_free[d.index()];
            *free = free.max(fin);
        }
        scratch.start[v] = start;
        scratch.finish[v] = fin;
        *makespan = makespan.max(fin);
        let fill = self.fill[d.index()];
        let mut stream_granted = false;
        let lo = self.out_start[v] as usize;
        let hi = self.out_start[v + 1] as usize;
        for k in lo..hi {
            let w = self.out_dst[k] as usize;
            #[cfg(feature = "strict-invariants")]
            assert!(
                w >= scratch.read_floor,
                "strict-invariants: replay updated successor {w} below its \
                 restore floor {}",
                scratch.read_floor
            );
            let dw = devices[w];
            let ready = if dw == d {
                if spatial {
                    if !stream_granted {
                        scratch.stream_input[w] = true;
                        stream_granted = true;
                    }
                    let ew = self.exec[w * m + dw.index()];
                    (start + fill * ev).max(fin - (1.0 - fill) * ew)
                } else {
                    fin
                }
            } else {
                let li = d.index() * m + dw.index();
                let tr = self.link_lat[li] + self.out_bytes[k] / self.link_bw[li];
                let link = &mut scratch.link_free[li];
                let t_start = fin.max(*link);
                *link = t_start + tr;
                t_start + tr
            };
            if ready > scratch.data_ready[w] {
                scratch.data_ready[w] = ready;
            }
        }
        fin
    }

    /// Internal index of the task at pop position `i` of `order`: the
    /// position itself on the sequential fast path (pop-order numbering
    /// replaying BFS), a permuted lookup otherwise.
    #[inline(always)]
    fn pop_internal(&self, seq: bool, pop_order: &[u32], i: usize) -> usize {
        if seq {
            i
        } else {
            self.perm[pop_order[i] as usize] as usize
        }
    }

    /// Makespan under schedule `order` via its precomputed pop order,
    /// recording a state snapshot into `out` every `out.every` pops.
    /// Functionally identical to
    /// [`Self::makespan_with_ranks`]`(…, order.ranks())` (same checks,
    /// same bits); the snapshots let [`Self::makespan_order_window`]
    /// later re-simulate any candidate from its first affected position
    /// instead of from zero.
    pub fn makespan_order_checkpointed(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        order: &OrderTables,
        out: &mut ScheduleCheckpoints,
    ) -> Option<f64> {
        let n = self.node_count();
        let m = self.device_count();
        debug_assert_eq!(mapping.len(), n);
        debug_assert_eq!(order.len(), n);
        scratch.stats.evaluations += 1;
        if !self.area_feasible(mapping) {
            return None;
        }
        scratch.stats.positions += n as u64;
        scratch.reset_times();
        let seq = self.seq_order(order);
        out.reset_shape(n, m, seq);
        let pop_order = order.pop_order();
        let mut dev_buf = std::mem::take(&mut scratch.devices);
        let devices = self.internal_devices(&mut dev_buf, mapping, 0);
        let mut makespan: f64 = 0.0;
        for i in 0..n {
            if i % out.every == 0 {
                out.record(i / out.every, scratch, makespan);
            }
            let v = self.pop_internal(seq, pop_order, i);
            self.sim_step(scratch, devices, v, &mut makespan);
        }
        scratch.devices = dev_buf;
        Some(makespan)
    }

    /// Breadth-first [`Self::makespan_order_checkpointed`].
    #[inline]
    pub fn makespan_bfs_checkpointed(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        out: &mut ScheduleCheckpoints,
    ) -> Option<f64> {
        self.makespan_order_checkpointed(scratch, mapping, &self.bfs, out)
    }

    /// Windowed makespan of a candidate mapping under schedule `order`:
    /// restore the base-schedule snapshot covering `from_pos` (the
    /// candidate's earliest affected position *under this schedule*) and
    /// replay only from there.
    ///
    /// Aborts with [`WindowSim::Cutoff`] as soon as a scheduled task
    /// proves `makespan > cutoff` (via `finish + up_min`): the proof is
    /// strict, so a candidate that exactly *ties* the cutoff is never
    /// aborted — tie-breaking stays exact.  Pass `f64::INFINITY` to
    /// disable the cutoff.
    ///
    /// The caller must have verified FPGA-area feasibility (the engine
    /// prechecks it incrementally), `ckpt` must hold snapshots recorded
    /// by [`Self::makespan_order_checkpointed`] under the *same* `order`,
    /// and the snapshotted base mapping must agree with `mapping` on
    /// every task read before `from_pos` (see
    /// [`OrderTables::earliest_read_pos`]).
    pub fn makespan_order_window(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        order: &OrderTables,
        ckpt: &ScheduleCheckpoints,
        from_pos: usize,
        cutoff: f64,
    ) -> WindowSim {
        let n = self.node_count();
        debug_assert_eq!(mapping.len(), n);
        debug_assert!(self.area_feasible(mapping), "caller prechecks area");
        let seq = self.seq_order(order);
        assert!(
            !ckpt.suffix || seq,
            "suffix-sparse snapshots can only replay the tables' own pop order"
        );
        scratch.stats.evaluations += 1;
        let start_pos = ckpt.restore(from_pos, scratch);
        let mut makespan = ckpt.makespan[start_pos / ckpt.every];
        let pop_order = order.pop_order();
        let mut dev_buf = std::mem::take(&mut scratch.devices);
        // A sequential replay only reads internal indices >= start_pos;
        // any other order may read anywhere.
        let gather_from = if seq { start_pos } else { 0 };
        let devices = self.internal_devices(&mut dev_buf, mapping, gather_from);
        let mut result = None;
        for i in start_pos..n {
            let v = self.pop_internal(seq, pop_order, i);
            let fin = self.sim_step(scratch, devices, v, &mut makespan);
            if fin + self.up_min_int[v] > cutoff {
                // Charge only what actually ran: aborted replays must
                // not inflate the stepped-position counter.
                scratch.stats.positions += (i + 1 - start_pos) as u64;
                result = Some(WindowSim::Cutoff);
                break;
            }
        }
        scratch.devices = dev_buf;
        result.unwrap_or_else(|| {
            scratch.stats.positions += (n - start_pos) as u64;
            WindowSim::Done(makespan)
        })
    }

    /// Windowed replay that *extends a rolling checkpoint trail* while
    /// it simulates: restore the snapshot covering `from_pos` from
    /// `src` — or from `rolling` itself when `src` is `None` — then
    /// replay the suffix, re-recording into `rolling` exactly the
    /// snapshots listed in `record` (ascending indices on `rolling`'s
    /// interval grid, all within the replayed range).
    ///
    /// This is the primitive behind the population engine's
    /// prefix-sharing trie order (docs/PERF.md): a depth-first chain of
    /// candidates keeps one rolling trail per branch.  *Truncate to
    /// position* on backtrack is implicit — stale suffix snapshots are
    /// only ever read after being re-recorded (the engine's serial
    /// planner proves which snapshots are live for which candidate) —
    /// and *extend in place* costs one `O(V)` memcpy per listed
    /// snapshot instead of a fresh full trail.
    ///
    /// Exactness: the replay runs the exact single-step arithmetic of
    /// [`Self::makespan_with_ranks`], so the result is bit-identical to
    /// a from-scratch simulation of `mapping` whenever the restored
    /// snapshot's originating mapping agrees with `mapping` on every
    /// task read before `from_pos`.  The caller must precheck FPGA-area
    /// feasibility and guarantee that agreement; `rolling` must be
    /// shaped for this graph/platform (e.g. via
    /// [`ScheduleCheckpoints::zeroed`]).  There is no cutoff — the
    /// population engine's fitness calls always complete.
    #[allow(clippy::too_many_arguments)]
    pub fn makespan_order_window_recording(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        order: &OrderTables,
        src: Option<&ScheduleCheckpoints>,
        rolling: &mut ScheduleCheckpoints,
        from_pos: usize,
        record: &[u32],
    ) -> f64 {
        let n = self.node_count();
        debug_assert_eq!(mapping.len(), n);
        debug_assert!(self.area_feasible(mapping), "caller prechecks area");
        let seq = self.seq_order(order);
        assert!(
            !rolling.suffix || seq,
            "suffix-sparse trails can only record the tables' own pop order"
        );
        if let Some(t) = src {
            assert!(
                !t.suffix || seq,
                "suffix-sparse snapshots can only replay the tables' own pop order"
            );
        }
        scratch.stats.evaluations += 1;
        let (start_pos, mut makespan) = match src {
            Some(t) => {
                let s = t.restore(from_pos, scratch);
                (s, t.makespan[s / t.every])
            }
            None => {
                let s = rolling.restore(from_pos, scratch);
                (s, rolling.makespan[s / rolling.every])
            }
        };
        scratch.stats.positions += (n - start_pos) as u64;
        let pop_order = order.pop_order();
        let mut dev_buf = std::mem::take(&mut scratch.devices);
        let gather_from = if seq { start_pos } else { 0 };
        let devices = self.internal_devices(&mut dev_buf, mapping, gather_from);
        let every = rolling.every;
        // Segment-wise replay: between two listed snapshots the inner
        // loop is exactly the plain window loop — no per-position
        // record check at all (record lists are short; most replays
        // list zero or one snapshot).
        let mut i = start_pos;
        for &j in record {
            let rpos = (j as usize) * every;
            debug_assert!(
                (start_pos..n).contains(&rpos),
                "record list reaches outside the replayed range"
            );
            while i < rpos {
                let v = self.pop_internal(seq, pop_order, i);
                self.sim_step(scratch, devices, v, &mut makespan);
                i += 1;
            }
            rolling.record(j as usize, scratch, makespan);
        }
        while i < n {
            let v = self.pop_internal(seq, pop_order, i);
            self.sim_step(scratch, devices, v, &mut makespan);
            i += 1;
        }
        scratch.devices = dev_buf;
        makespan
    }

    /// Breadth-first [`Self::makespan_order_window`].
    #[inline]
    pub fn makespan_bfs_window(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        ckpt: &ScheduleCheckpoints,
        from_pos: usize,
        cutoff: f64,
    ) -> WindowSim {
        self.makespan_order_window(scratch, mapping, &self.bfs, ckpt, from_pos, cutoff)
    }

    /// Makespan under an arbitrary policy.
    pub fn makespan(
        &self,
        scratch: &mut EvalScratch,
        mapping: &Mapping,
        policy: SchedulePolicy,
    ) -> Option<f64> {
        match policy {
            SchedulePolicy::Bfs => self.makespan_bfs(scratch, mapping),
            _ => {
                let ranks = priority_ranks(self.graph, policy);
                self.makespan_with_ranks(scratch, mapping, &ranks)
            }
        }
    }
}

/// Reusable mutable working set of one in-flight simulation.
///
/// Allocates once for a `(node count, device count)` shape; every
/// evaluation reuses the buffers.  Create one per worker thread.
#[derive(Clone, Debug)]
pub struct EvalScratch {
    indeg: Vec<u32>,
    data_ready: Vec<f64>,
    start: Vec<f64>,
    finish: Vec<f64>,
    device_free: Vec<f64>,
    /// `link_free[from * m + to]` — next time the directed link is idle.
    link_free: Vec<f64>,
    stream_input: Vec<bool>,
    /// Gather buffer for the mapping permuted into the tables' internal
    /// numbering (pop-order paths; unused under identity numbering).
    devices: Vec<DeviceId>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    stats: EvalStats,
    /// Lowest per-node index the current (windowed) replay may touch —
    /// armed by [`ScheduleCheckpoints::restore`] under the suffix
    /// layout, checked by `sim_step`/`record` (docs/DETERMINISM.md).
    #[cfg(feature = "strict-invariants")]
    read_floor: usize,
}

impl EvalScratch {
    /// A scratch for graphs with `nodes` tasks on `devices` devices.
    pub fn new(nodes: usize, devices: usize) -> Self {
        Self {
            indeg: vec![0; nodes],
            data_ready: vec![0.0; nodes],
            start: vec![0.0; nodes],
            finish: vec![0.0; nodes],
            device_free: vec![0.0; devices],
            link_free: vec![0.0; devices * devices],
            stream_input: vec![false; nodes],
            devices: vec![DeviceId(0); nodes],
            heap: BinaryHeap::with_capacity(nodes),
            stats: EvalStats::default(),
            #[cfg(feature = "strict-invariants")]
            read_floor: 0,
        }
    }

    /// A scratch shaped for `tables`.
    pub fn for_tables(tables: &EvalTables<'_>) -> Self {
        Self::new(tables.node_count(), tables.device_count())
    }

    /// Zero every timing buffer (the pop-order paths need no in-degree
    /// or heap state).
    fn reset_times(&mut self) {
        #[cfg(feature = "strict-invariants")]
        {
            self.read_floor = 0;
        }
        self.data_ready.iter_mut().for_each(|t| *t = 0.0);
        self.start.iter_mut().for_each(|t| *t = 0.0);
        self.finish.iter_mut().for_each(|t| *t = 0.0);
        self.stream_input.iter_mut().for_each(|s| *s = false);
        self.device_free.iter_mut().for_each(|t| *t = 0.0);
        self.link_free.iter_mut().for_each(|t| *t = 0.0);
    }

    /// Start time per task of the most recent complete evaluation,
    /// indexed by the tables' *internal* numbering (translate with
    /// [`EvalTables::internal_index`]; [`Evaluator::simulate`] returns
    /// externally-indexed copies).
    #[inline]
    pub fn start_times(&self) -> &[f64] {
        &self.start
    }

    /// Finish time per task of the most recent complete evaluation
    /// (internal numbering, like [`Self::start_times`]).
    #[inline]
    pub fn finish_times(&self) -> &[f64] {
        &self.finish
    }

    /// Lifetime evaluation counters of this scratch.
    #[inline]
    pub fn stats(&self) -> EvalStats {
        self.stats
    }
}

/// Outcome of a windowed candidate simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowSim {
    /// The complete makespan (bit-identical to a from-scratch run).
    Done(f64),
    /// Aborted: the makespan is *strictly* above the cutoff, so the
    /// candidate provably cannot beat the incumbent improvement.
    Cutoff,
}

/// State snapshots of one base-mapping list schedule (breadth-first or
/// any fixed [`OrderTables`]), taken every `every` pop positions by
/// [`EvalTables::makespan_order_checkpointed`] and consumed by
/// [`EvalTables::makespan_order_window`].
///
/// Because the pop order of a fixed rank vector is mapping-independent,
/// a candidate that first affects the schedule at position `p` shares the
/// base schedule's exact state before `p`; restoring the latest snapshot
/// at or before `p` replaces the `O(V + E)` prefix with an `O(V)` memcpy.
///
/// ## Snapshot layouts
///
/// Per-node state (`data_ready`, packed `stream_input` bits) is stored in
/// one of two layouts, chosen when the recording run shapes the store:
///
/// * **dense** — every snapshot holds all `n` entries.  Always sound.
/// * **suffix-sparse** — snapshot `j` holds only internal indices
///   `[j·every .. n)`.  Sound exactly when the replayed order is a
///   sequential scan of the tables' internal numbering
///   ([`Numbering::PopOrder`] replaying the BFS order): from position
///   `p` onward the simulation reads and writes per-node state only at
///   internal indices `>= p` — the popped task *is* index `i >= p`, and
///   every successor pops later, so its index is `> i`.  Total bytes
///   drop from `count·n` to `Σ_j (n − j·every) ≈ n²/(2·every)` — half —
///   and restores become suffix memcpys.
///
/// The `O(m + m²)` device/link state and the running makespan are dense
/// per snapshot in both layouts.  `stream_input` is bit-packed (1
/// bit/node instead of 1 byte/node) in both layouts.
#[derive(Clone, Debug)]
pub struct ScheduleCheckpoints {
    every: usize,
    n: usize,
    m: usize,
    count: usize,
    /// `true`: suffix-sparse per-node layout (see type docs).
    suffix: bool,
    /// `true`: never adopt the suffix layout, even when the recording
    /// order would allow it (ablation / bit-identity test cells).
    dense_only: bool,
    /// Per-snapshot start offsets into `data_ready` (`count + 1`
    /// entries; snapshot `j` owns `data_ready[off[j]..off[j+1]]`).
    off: Vec<usize>,
    /// Per-snapshot start offsets into `stream_words`.
    woff: Vec<usize>,
    data_ready: Vec<f64>,
    device_free: Vec<f64>,
    link_free: Vec<f64>,
    /// Bit-packed `stream_input`: bit `k` of snapshot `j`'s words is
    /// node `lo_j + k` (`lo_j` = the snapshot's first stored index).
    stream_words: Vec<u64>,
    makespan: Vec<f64>,
}

/// Former name of [`ScheduleCheckpoints`], kept while the snapshots were
/// breadth-first-only.
pub type BfsCheckpoints = ScheduleCheckpoints;

impl ScheduleCheckpoints {
    /// An empty snapshot store with a fixed interval.  The layout is
    /// chosen by the first recording run: suffix-sparse when the order
    /// allows it, dense otherwise.
    pub fn new(every: usize) -> Self {
        Self {
            every: every.max(1),
            n: 0,
            m: 0,
            count: 0,
            suffix: false,
            dense_only: false,
            off: Vec::new(),
            woff: Vec::new(),
            data_ready: Vec::new(),
            device_free: Vec::new(),
            link_free: Vec::new(),
            stream_words: Vec::new(),
            makespan: Vec::new(),
        }
    }

    /// [`Self::new`], pinned to the dense layout regardless of the
    /// recording order (the bit-identity matrix's dense cells).
    pub fn new_dense(every: usize) -> Self {
        let mut s = Self::new(every);
        s.dense_only = true;
        s
    }

    /// A store holding only the all-zero snapshot at position 0 for an
    /// `n`-task, `m`-device shape.  The zero state is the initial state
    /// of *every* simulation, so windowing from position 0 against this
    /// store replays the whole schedule through the precomputed pop
    /// order — bit-identical to the heap-driven run, but without paying
    /// the ready-heap's `O(log V)` per pop
    /// ([`EvalTables::makespan_order_window`] with `from_pos = 0`).
    pub fn zeroed(n: usize, m: usize, every: usize) -> Self {
        Self::zeroed_with_layout(n, m, every, false)
    }

    /// [`Self::zeroed`] with an explicit layout: `suffix = true` shapes
    /// the store suffix-sparse, for rolling trails that will be
    /// re-recorded in place by sequential replays
    /// ([`EvalTables::makespan_order_window_recording`] asserts the
    /// compatibility).
    pub fn zeroed_with_layout(n: usize, m: usize, every: usize, suffix: bool) -> Self {
        let mut s = Self::new(every);
        s.dense_only = !suffix;
        s.reset_shape(n, m, suffix);
        s
    }

    /// An interval balancing snapshot memory (`~n/every` snapshots of
    /// `O(n)` state) against replay length, for an `n`-task graph.
    ///
    /// The interval scales with the graph (`n/32`, so ~32 snapshots per
    /// trail regardless of size): a fixed ceiling would make the
    /// snapshot *count* — and with it the recording bandwidth per pop
    /// position — grow linearly with `n`, and at the XL sizes that
    /// copy traffic would dominate the simulation kernel itself.  The
    /// 4096 ceiling only caps replay length beyond ~131k tasks, where
    /// the byte budget ([`Self::auto_interval_for`]) takes over anyway.
    pub fn auto_interval(n: usize) -> usize {
        (n / 32).clamp(8, 4096)
    }

    /// Budget-aware [`Self::auto_interval`]: the balance heuristic's
    /// interval, widened until one trail's snapshot bytes fit
    /// `budget_bytes` (`0` ⇒ [`DEFAULT_CHECKPOINT_BUDGET_BYTES`]).
    ///
    /// Sized against the *dense* estimate `~8.125·n²/every` bytes
    /// (`count·n` f64 entries plus 1 bit each), so the budget holds for
    /// both layouts; suffix-sparse stores land near half of it.  An
    /// eighth of the budget is reserved for the dense device/link state
    /// and the `+1` partial snapshot.
    pub fn auto_interval_for(n: usize, budget_bytes: usize) -> usize {
        let budget = if budget_bytes == 0 {
            DEFAULT_CHECKPOINT_BUDGET_BYTES
        } else {
            budget_bytes
        };
        let budget = (budget - budget / 8).max(1) as u64;
        // count * n * (8 + 1/8) bytes <= budget, count ~ n/every.
        let need = (n as u64) * (n as u64) * 65 / 8;
        let widened = need.div_ceil(budget) as usize;
        Self::auto_interval(n).max(widened)
    }

    /// Snapshot interval in pop positions.
    pub fn every(&self) -> usize {
        self.every
    }

    /// Number of snapshot slots of the current shape.
    pub fn snapshot_count(&self) -> usize {
        self.count
    }

    /// `true` when the store currently uses the suffix-sparse layout.
    #[inline]
    pub fn is_suffix(&self) -> bool {
        self.suffix
    }

    /// Heap bytes of the snapshot payload at the current shape — the
    /// number the checkpoint byte budget gates.
    pub fn byte_len(&self) -> usize {
        (self.data_ready.len()
            + self.device_free.len()
            + self.link_free.len()
            + self.stream_words.len()
            + self.makespan.len())
            * 8
            + (self.off.len() + self.woff.len()) * std::mem::size_of::<usize>()
    }

    /// The snapshot index a restore at `from_pos` resolves to — the
    /// latest snapshot at or before that pop position.  Planners (the
    /// population engine's trie order) use this to predict restore
    /// points without touching the store.
    #[inline]
    pub fn snapshot_index(&self, from_pos: usize) -> usize {
        (from_pos / self.every).min(self.count - 1)
    }

    /// First per-node index stored by snapshot `j`.
    #[inline]
    fn snap_lo(&self, j: usize) -> usize {
        if self.suffix {
            (j * self.every).min(self.n)
        } else {
            0
        }
    }

    /// Size the store for an `n`-task, `m`-device run; `suffix` is the
    /// layout the recording order permits (ignored when the store is
    /// pinned dense).
    fn reset_shape(&mut self, n: usize, m: usize, suffix: bool) {
        self.n = n;
        self.m = m;
        self.suffix = suffix && !self.dense_only;
        self.count = (n / self.every + 1).max(1);
        self.off.clear();
        self.woff.clear();
        let mut dr = 0usize;
        let mut w = 0usize;
        self.off.push(0);
        self.woff.push(0);
        for j in 0..self.count {
            let lo = if self.suffix {
                (j * self.every).min(n)
            } else {
                0
            };
            dr += n - lo;
            w += (n - lo).div_ceil(64);
            self.off.push(dr);
            self.woff.push(w);
        }
        self.data_ready.clear();
        self.data_ready.resize(dr, 0.0);
        self.device_free.clear();
        self.device_free.resize(self.count * m, 0.0);
        self.link_free.clear();
        self.link_free.resize(self.count * m * m, 0.0);
        self.stream_words.clear();
        self.stream_words.resize(w, 0);
        self.makespan.clear();
        self.makespan.resize(self.count, 0.0);
    }

    /// Record snapshot `j` (state after `j * every` pops).
    fn record(&mut self, j: usize, scratch: &EvalScratch, makespan: f64) {
        debug_assert!(j < self.count);
        let m = self.m;
        let lo = self.snap_lo(j);
        // A snapshot must only capture state the replay actually wrote:
        // copying from below the restore floor would bake the stale
        // prefix of a suffix restore into a checkpoint (see `restore`).
        #[cfg(feature = "strict-invariants")]
        assert!(
            lo >= scratch.read_floor,
            "strict-invariants: snapshot {j} captures below the restore floor \
             ({lo} < {})",
            scratch.read_floor
        );
        self.data_ready[self.off[j]..self.off[j + 1]].copy_from_slice(&scratch.data_ready[lo..]);
        self.device_free[j * m..(j + 1) * m].copy_from_slice(&scratch.device_free);
        self.link_free[j * m * m..(j + 1) * m * m].copy_from_slice(&scratch.link_free);
        pack_bits(
            &scratch.stream_input[lo..],
            &mut self.stream_words[self.woff[j]..self.woff[j + 1]],
        );
        self.makespan[j] = makespan;
    }

    /// Restore the latest snapshot at or before `from_pos` into
    /// `scratch`; returns the pop position simulation must resume from.
    ///
    /// Under the suffix layout only `scratch` indices `>= j·every` are
    /// written — exactly the range a sequential replay resuming at that
    /// position may touch; the stale prefix is never read.
    fn restore(&self, from_pos: usize, scratch: &mut EvalScratch) -> usize {
        let j = self.snapshot_index(from_pos);
        let m = self.m;
        let lo = self.snap_lo(j);
        #[cfg(feature = "strict-invariants")]
        {
            assert!(
                j * self.every <= from_pos,
                "strict-invariants: snapshot_index returned a snapshot past from_pos"
            );
            // Arm the read-bound checker for the suffix layout: the
            // exactness argument (docs/PERF.md "Scale tier") says a
            // sequential replay resuming at `lo` never touches per-node
            // state below `lo`.  `sim_step` and `record` assert against
            // this floor instead of silently using the stale prefix.
            scratch.read_floor = if self.suffix { lo } else { 0 };
        }
        scratch.data_ready[lo..].copy_from_slice(&self.data_ready[self.off[j]..self.off[j + 1]]);
        scratch
            .device_free
            .copy_from_slice(&self.device_free[j * m..(j + 1) * m]);
        scratch
            .link_free
            .copy_from_slice(&self.link_free[j * m * m..(j + 1) * m * m]);
        unpack_bits(
            &self.stream_words[self.woff[j]..self.woff[j + 1]],
            &mut scratch.stream_input[lo..],
        );
        j * self.every
    }
}

/// Pack `bools` into `words` little-endian (bit `k` of `words[k / 64]`
/// is `bools[k]`); trailing bits of the last word are zero.
#[inline]
fn pack_bits(bools: &[bool], words: &mut [u64]) {
    debug_assert_eq!(words.len(), bools.len().div_ceil(64));
    for (word, chunk) in words.iter_mut().zip(bools.chunks(64)) {
        let mut w = 0u64;
        for (b, &set) in chunk.iter().enumerate() {
            w |= (set as u64) << b;
        }
        *word = w;
    }
}

/// Inverse of [`pack_bits`].
#[inline]
fn unpack_bits(words: &[u64], bools: &mut [bool]) {
    debug_assert_eq!(words.len(), bools.len().div_ceil(64));
    for (&w, chunk) in words.iter().zip(bools.chunks_mut(64)) {
        for (b, slot) in chunk.iter_mut().enumerate() {
            *slot = (w >> b) & 1 != 0;
        }
    }
}

/// One [`ScheduleCheckpoints`] store per report schedule: the multi-
/// schedule generalization of the single BFS snapshot store.
///
/// The candidate engine records a base-mapping snapshot trail for *every*
/// schedule of a [`ReportSchedules`] set on each commit, so any candidate
/// can be windowed under any schedule.  Store `s` must only ever be
/// written/read with the order `schedules.order(s)` — the set carries no
/// schedule identity of its own.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    stores: Vec<ScheduleCheckpoints>,
}

impl CheckpointSet {
    /// One empty snapshot store per schedule, all with interval `every`.
    pub fn new(schedules: usize, every: usize) -> Self {
        assert!(
            schedules > 0,
            "a schedule set is never empty (BFS is always present)"
        );
        Self {
            stores: (0..schedules)
                .map(|_| ScheduleCheckpoints::new(every))
                .collect(),
        }
    }

    /// A set shaped for `schedules` with the automatic interval for an
    /// `n`-task graph (default byte budget, automatic layout).
    pub fn for_schedules(schedules: &ReportSchedules, n: usize) -> Self {
        Self::for_schedules_budgeted(schedules, n, 0, false)
    }

    /// [`Self::for_schedules`] with an explicit per-trail byte budget
    /// (`0` ⇒ default; see
    /// [`ScheduleCheckpoints::auto_interval_for`]) and, when `dense` is
    /// set, every store pinned to the dense snapshot layout.
    pub fn for_schedules_budgeted(
        schedules: &ReportSchedules,
        n: usize,
        budget_bytes: usize,
        dense: bool,
    ) -> Self {
        let every = ScheduleCheckpoints::auto_interval_for(n, budget_bytes);
        let mut set = Self::new(schedules.len(), every);
        if dense {
            for s in &mut set.stores {
                s.dense_only = true;
            }
        }
        set
    }

    /// Total snapshot bytes across all stores at their current shapes.
    pub fn byte_len(&self) -> usize {
        self.stores.iter().map(|s| s.byte_len()).sum()
    }

    /// Largest single store (bytes) — the per-trail number the
    /// checkpoint budget gates.
    pub fn max_store_bytes(&self) -> usize {
        self.stores.iter().map(|s| s.byte_len()).max().unwrap_or(0)
    }

    /// Number of per-schedule stores.
    #[inline]
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// `false` always (constructed non-empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// The snapshot store of schedule `s`.
    #[inline]
    pub fn get(&self, s: usize) -> &ScheduleCheckpoints {
        &self.stores[s]
    }

    /// Mutable snapshot store of schedule `s` (for recording a new base).
    #[inline]
    pub fn get_mut(&mut self, s: usize) -> &mut ScheduleCheckpoints {
        &mut self.stores[s]
    }
}

/// Reusable makespan evaluator for one `(graph, platform)` pair: an
/// [`EvalTables`] plus one [`EvalScratch`] behind the original
/// single-threaded API.
pub struct Evaluator<'g> {
    tables: EvalTables<'g>,
    scratch: EvalScratch,
}

impl<'g> Evaluator<'g> {
    /// Build an evaluator, pre-tabulating all `(task, device)` execution
    /// times and the breadth-first priority ranks.
    pub fn new(graph: &'g TaskGraph, platform: &'g Platform) -> Self {
        let tables = EvalTables::new(graph, platform);
        let scratch = EvalScratch::for_tables(&tables);
        Self { tables, scratch }
    }

    /// The shared immutable tables (for the parallel candidate engine).
    #[inline]
    pub fn tables(&self) -> &EvalTables<'g> {
        &self.tables
    }

    /// Split into the immutable tables and the scratch, e.g. to share the
    /// tables across threads while keeping this scratch for the caller.
    pub fn into_parts(self) -> (EvalTables<'g>, EvalScratch) {
        (self.tables, self.scratch)
    }

    /// The graph this evaluator simulates.
    pub fn graph(&self) -> &TaskGraph {
        self.tables.graph()
    }

    /// The platform this evaluator simulates.
    pub fn platform(&self) -> &Platform {
        self.tables.platform()
    }

    /// Tabulated execution time of task `n` on device `d`.
    #[inline]
    pub fn exec_time(&self, n: NodeId, d: DeviceId) -> f64 {
        self.tables.exec_time(n, d)
    }

    /// Lifetime evaluation counters.
    pub fn stats(&self) -> EvalStats {
        self.scratch.stats()
    }

    /// Makespan under an explicit priority-rank vector, or `None` if the
    /// mapping violates an FPGA area budget.
    pub fn makespan_with_ranks(&mut self, mapping: &Mapping, ranks: &[u32]) -> Option<f64> {
        self.tables
            .makespan_with_ranks(&mut self.scratch, mapping, ranks)
    }

    /// Makespan under the deterministic breadth-first schedule — the
    /// optimizers' inner-loop cost function.
    pub fn makespan_bfs(&mut self, mapping: &Mapping) -> Option<f64> {
        self.tables.makespan_bfs(&mut self.scratch, mapping)
    }

    /// Makespan under an arbitrary policy.
    pub fn makespan(&mut self, mapping: &Mapping, policy: SchedulePolicy) -> Option<f64> {
        self.tables.makespan(&mut self.scratch, mapping, policy)
    }

    /// The paper's reporting metric (§IV-A): the minimum makespan over the
    /// breadth-first schedule and `random_schedules` seeded random
    /// topological schedules.  Recomputes every random rank vector on
    /// each call — the straightforward reference; hot paths precompute a
    /// [`ReportSchedules`] once and use
    /// [`Self::report_makespan_with`] (bit-identical results).
    pub fn report_makespan(
        &mut self,
        mapping: &Mapping,
        random_schedules: usize,
        seed: u64,
    ) -> Option<f64> {
        let mut best = self.makespan_bfs(mapping)?;
        for i in 0..random_schedules {
            let ranks = priority_ranks(
                self.tables.graph(),
                SchedulePolicy::RandomTopo {
                    seed: seed.wrapping_add(i as u64),
                },
            );
            if let Some(ms) = self.makespan_with_ranks(mapping, &ranks) {
                best = best.min(ms);
            }
        }
        Some(best)
    }

    /// [`Self::report_makespan`] over a precomputed schedule set: the
    /// minimum makespan over every order of `schedules`.  The fold order
    /// and every per-schedule simulation match the reference exactly, so
    /// the result is bit-identical to
    /// `report_makespan(mapping, schedules.random_schedules(), schedules.seed())`.
    pub fn report_makespan_with(
        &mut self,
        mapping: &Mapping,
        schedules: &ReportSchedules,
    ) -> Option<f64> {
        let mut best = self.tables.makespan_with_ranks(
            &mut self.scratch,
            mapping,
            schedules.order(0).ranks(),
        )?;
        for s in 1..schedules.len() {
            if let Some(ms) = self.tables.makespan_with_ranks(
                &mut self.scratch,
                mapping,
                schedules.order(s).ranks(),
            ) {
                best = best.min(ms);
            }
        }
        Some(best)
    }

    /// Full start/finish detail under a policy (allocates; not for the hot
    /// loop).  The returned vectors are indexed by *external* node id —
    /// this is the result boundary where the tables' internal numbering
    /// is inverted.
    pub fn simulate(&mut self, mapping: &Mapping, policy: SchedulePolicy) -> Option<Schedule> {
        let makespan = self.makespan(mapping, policy)?;
        let n = self.tables.node_count();
        let mut start = vec![0.0; n];
        let mut finish = vec![0.0; n];
        for (v, (s, f)) in start.iter_mut().zip(finish.iter_mut()).enumerate() {
            let vi = self.tables.internal_index(NodeId(v as u32));
            *s = self.scratch.start_times()[vi];
            *f = self.scratch.finish_times()[vi];
        }
        Some(Schedule {
            start,
            finish,
            makespan,
        })
    }

    /// Makespan of the all-default (pure CPU) mapping — the baseline of
    /// every relative improvement.
    pub fn cpu_only_makespan(&mut self) -> f64 {
        let mapping = Mapping::all_default(self.tables.graph(), self.tables.platform());
        self.makespan_bfs(&mapping)
            .expect("the default mapping uses no FPGA area")
    }
}

/// The paper's improvement measure: relative makespan improvement over the
/// pure-CPU baseline, truncated at zero ("we count deteriorations as zero
/// improvements").
#[inline]
pub fn relative_improvement(cpu_only: f64, mapped: f64) -> f64 {
    if cpu_only <= 0.0 {
        return 0.0;
    }
    ((cpu_only - mapped) / cpu_only).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, diamond, fork_join, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, ops, AugmentConfig};

    const CPU: DeviceId = DeviceId(0);
    const GPU: DeviceId = DeviceId(1);
    const FPGA: DeviceId = DeviceId(2);

    fn ref_platform() -> Platform {
        Platform::reference()
    }

    fn set_attrs(g: &mut TaskGraph, p: f64, s: f64) {
        for v in 0..g.node_count() {
            let t = g.task_mut(NodeId(v as u32));
            t.complexity = 8.0;
            t.data_points = 1e7;
            t.parallelizability = p;
            t.streamability = s;
            t.area = 64.0;
        }
    }

    #[test]
    fn cpu_chain_is_sum_of_exec_times() {
        let mut g = chain(5, 100e6);
        set_attrs(&mut g, 0.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::all_default(&g, &p);
        let ms = ev.makespan_bfs(&m).unwrap();
        let each = 8e7 / 0.3e9;
        assert!((ms - 5.0 * each).abs() < 1e-9);
    }

    #[test]
    fn single_device_makespan_is_total_work() {
        // With one device there is never idle time on a connected DAG.
        let mut g = diamond(100e6);
        set_attrs(&mut g, 0.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let ms = ev.cpu_only_makespan();
        let total: f64 = g.nodes().map(|v| ev.exec_time(v, CPU)).sum();
        assert!((ms - total).abs() < 1e-9);
    }

    #[test]
    fn cross_device_edge_pays_transfer() {
        let mut g = chain(2, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(1), GPU);
        let ms = ev.makespan_bfs(&m).unwrap();
        let expect = ev.exec_time(NodeId(0), CPU)
            + p.transfer_time(100e6, CPU, GPU)
            + ev.exec_time(NodeId(1), GPU);
        assert!((ms - expect).abs() < 1e-9);
    }

    #[test]
    fn offloading_independent_work_reduces_makespan() {
        let mut g = fork_join(4, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let base = ev.cpu_only_makespan();
        let mut m = Mapping::all_default(&g, &p);
        // Two of the four middle tasks to the GPU.
        m.set(NodeId(1), GPU);
        m.set(NodeId(2), GPU);
        let ms = ev.makespan_bfs(&m).unwrap();
        assert!(ms < base, "offload {ms} < cpu-only {base}");
    }

    #[test]
    fn fpga_serializes_independent_tasks() {
        // Four independent middle tasks on the FPGA are all pipeline
        // heads: they queue, exactly like on a temporal device
        // (concurrency on the FPGA comes from streaming chains only).
        let mut g = fork_join(4, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        for i in 1..=4 {
            m.set(NodeId(i), FPGA);
        }
        let ms = ev.makespan_bfs(&m).unwrap();
        let mid_time = ev.exec_time(NodeId(1), FPGA);
        let tr = p.transfer_time(100e6, CPU, FPGA);
        // Source + transfer + four serialized mids + transfer + sink.
        let expect =
            ev.exec_time(NodeId(0), CPU) + tr + 4.0 * mid_time + tr + ev.exec_time(NodeId(5), CPU);
        assert!(
            (ms - expect).abs() < 1e-9,
            "serialized makespan {ms} vs {expect}"
        );
    }

    #[test]
    fn fpga_pipeline_does_not_block_chain_members() {
        // A streaming chain on the FPGA plus one independent FPGA task:
        // the chain pipelines; the independent task queues behind the
        // pipeline head it was scheduled after.
        let mut g = spmap_graph::GraphBuilder::new();
        let a = g.add_task(spmap_graph::Task::default());
        let b = g.add_task(spmap_graph::Task::default());
        let c = g.add_task(spmap_graph::Task::default());
        g.add_edge(a, b, 100e6).unwrap();
        let mut g = g.build().unwrap();
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(3, FPGA);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let exec = ev.exec_time(NodeId(0), FPGA);
        // b streams behind a (starts at fill), c is an independent head.
        assert!((sched.start[b.index()] - 0.05 * exec).abs() < 1e-9);
        // c queues after one of the heads, not in parallel with both.
        assert!(sched.start[c.index()] >= exec - 1e-9 || sched.start[a.index()] >= exec - 1e-9);
        let _ = sched;
    }

    #[test]
    fn fpga_streaming_overlaps_chains() {
        let mut g = chain(6, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(6, FPGA);
        let ms = ev.makespan_bfs(&m).unwrap();
        let each = ev.exec_time(NodeId(0), FPGA);
        // Pipelined: first task + 5 fill increments, not 6 full tasks.
        let expect = each + 5.0 * 0.05 * each;
        assert!((ms - expect).abs() < 1e-9, "streamed {ms} vs {expect}");
        assert!(ms < 2.0 * each, "must be far below the serial sum");
    }

    #[test]
    fn streaming_consumer_never_finishes_before_producer() {
        let mut g = chain(2, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        // Make the consumer much cheaper than the producer.
        g.task_mut(NodeId(1)).complexity = 0.1;
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(2, FPGA);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        assert!(
            sched.finish[1] >= sched.finish[0],
            "consumer finish {} producer finish {}",
            sched.finish[1],
            sched.finish[0]
        );
    }

    #[test]
    fn area_violation_is_infeasible() {
        let mut g = chain(4, 100e6);
        set_attrs(&mut g, 0.0, 8.0);
        for v in 0..4 {
            g.task_mut(NodeId(v)).area = 700.0;
        }
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(4, FPGA);
        assert_eq!(ev.makespan_bfs(&m), None, "2800 > 1200 area");
        let m2 = Mapping::uniform(4, CPU);
        assert!(ev.makespan_bfs(&m2).is_some());
    }

    #[test]
    fn makespan_never_below_critical_path() {
        let mut g = random_sp_graph(&SpGenConfig::new(60, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        for trial in 0..20u64 {
            // Random-ish mapping over the three devices; FPGA may exceed
            // area (then makespan is None, which is fine).
            let mapping = Mapping::from_vec(
                (0..g.node_count())
                    .map(|i| DeviceId(((i as u64 * 7 + trial * 13) % 3) as u32))
                    .collect(),
            );
            let Some(ms) = ev.makespan_bfs(&mapping) else {
                continue;
            };
            // Lower bound: critical path of mapped exec times (edges >= 0),
            // discounted by the max streaming overlap factor to stay a
            // valid bound in the presence of FPGA pipelining.
            let lb = ops::critical_path(&g, |v| 0.05 * ev.exec_time(v, mapping.device(v)), |_| 0.0);
            assert!(ms + 1e-9 >= lb, "makespan {ms} < bound {lb}");
        }
    }

    #[test]
    fn report_makespan_is_min_over_schedules() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 8));
        augment(&mut g, &AugmentConfig::default(), 8);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mapping = Mapping::from_vec(
            (0..g.node_count())
                .map(|i| DeviceId((i % 2) as u32))
                .collect(),
        );
        let bfs = ev.makespan_bfs(&mapping).unwrap();
        let report = ev.report_makespan(&mapping, 20, 99).unwrap();
        assert!(report <= bfs + 1e-12);
        // Deterministic.
        assert_eq!(report, ev.report_makespan(&mapping, 20, 99).unwrap());
    }

    #[test]
    fn report_makespan_with_matches_reference_bitwise() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 8));
        augment(&mut g, &AugmentConfig::default(), 8);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        for (k, seed) in [(0usize, 7u64), (3, 7), (8, 123)] {
            let schedules = ReportSchedules::new(&g, k, seed);
            for trial in 0..6u64 {
                let mapping = Mapping::from_vec(
                    (0..g.node_count())
                        .map(|i| DeviceId(((i as u64 * 11 + trial * 5) % 3) as u32))
                        .collect(),
                );
                let reference = ev.report_makespan(&mapping, k, seed);
                let precomputed = ev.report_makespan_with(&mapping, &schedules);
                assert_eq!(reference, precomputed, "k={k} seed={seed} trial={trial}");
            }
        }
    }

    #[test]
    fn order_checkpointed_and_window_match_heap_run_on_any_schedule() {
        // The windowed-re-simulation argument for arbitrary fixed orders:
        // checkpointed full runs and windowed replays from any position
        // reproduce the heap-driven simulation bit for bit, for random
        // topological schedules exactly like for BFS.
        let mut g = random_sp_graph(&SpGenConfig::new(45, 17));
        augment(&mut g, &AugmentConfig::default(), 17);
        let p = ref_platform();
        let tables = EvalTables::new(&g, &p);
        let mut scratch = EvalScratch::for_tables(&tables);
        let schedules = ReportSchedules::new(&g, 3, 99);
        let mut ckpts = CheckpointSet::for_schedules(&schedules, g.node_count());
        let base = Mapping::all_default(&g, &p);
        for s in 0..schedules.len() {
            let order = schedules.order(s);
            let heap_ms = tables
                .makespan_with_ranks(&mut scratch, &base, order.ranks())
                .unwrap();
            let ck_ms = tables
                .makespan_order_checkpointed(&mut scratch, &base, order, ckpts.get_mut(s))
                .unwrap();
            assert_eq!(heap_ms, ck_ms, "schedule {s}: checkpointed run drifted");
        }
        // Candidates: move one task at a time; window from its earliest
        // read position under each schedule.
        let mut candidate = base.clone();
        for v in 0..g.node_count().min(12) {
            let v = NodeId(v as u32);
            candidate.set(v, GPU);
            for s in 0..schedules.len() {
                let order = schedules.order(s);
                let full = tables
                    .makespan_with_ranks(&mut scratch, &candidate, order.ranks())
                    .unwrap();
                let windowed = tables.makespan_order_window(
                    &mut scratch,
                    &candidate,
                    order,
                    ckpts.get(s),
                    order.earliest_read_pos(v),
                    f64::INFINITY,
                );
                assert_eq!(windowed, WindowSim::Done(full), "task {v:?} schedule {s}");
                // A cutoff strictly below the result must abort; a cutoff
                // exactly at the result must not (strict proof).
                assert_eq!(
                    tables.makespan_order_window(
                        &mut scratch,
                        &candidate,
                        order,
                        ckpts.get(s),
                        order.earliest_read_pos(v),
                        full,
                    ),
                    WindowSim::Done(full),
                    "tie with the cutoff must complete"
                );
            }
            candidate.set(v, CPU);
        }
    }

    #[test]
    fn relative_improvement_truncates() {
        assert_eq!(relative_improvement(10.0, 5.0), 0.5);
        assert_eq!(relative_improvement(10.0, 12.0), 0.0);
        assert_eq!(relative_improvement(0.0, 1.0), 0.0);
    }

    #[test]
    fn eval_stats_count() {
        let g = chain(3, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::all_default(&g, &p);
        ev.makespan_bfs(&m);
        ev.makespan_bfs(&m);
        assert_eq!(ev.stats().evaluations, 2);
    }

    #[test]
    fn gpu_queue_serializes() {
        // Two independent tasks on the GPU must serialize.
        let mut g = fork_join(2, 100e6);
        set_attrs(&mut g, 1.0, 1.0);
        let p = ref_platform();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(1), GPU);
        m.set(NodeId(2), GPU);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let (s1, f1) = (sched.start[1], sched.finish[1]);
        let (s2, f2) = (sched.start[2], sched.finish[2]);
        assert!(
            f1 <= s2 || f2 <= s1,
            "GPU tasks overlap: [{s1},{f1}] [{s2},{f2}]"
        );
    }

    #[test]
    fn shared_tables_concurrent_evaluations_match_serial() {
        // The tables are Sync: four threads evaluating different mappings
        // against one shared &EvalTables must reproduce the serial bits.
        let mut g = random_sp_graph(&SpGenConfig::new(50, 11));
        augment(&mut g, &AugmentConfig::default(), 11);
        let p = ref_platform();
        let tables = EvalTables::new(&g, &p);
        let mappings: Vec<Mapping> = (0..16u32)
            .map(|t| {
                Mapping::from_vec(
                    (0..g.node_count())
                        .map(|i| DeviceId(((i as u32).wrapping_mul(5).wrapping_add(t)) % 3))
                        .collect(),
                )
            })
            .collect();
        let mut serial_scratch = EvalScratch::for_tables(&tables);
        let serial: Vec<Option<f64>> = mappings
            .iter()
            .map(|m| tables.makespan_bfs(&mut serial_scratch, m))
            .collect();
        let parallel: Vec<Option<f64>> = std::thread::scope(|scope| {
            let chunks: Vec<_> = mappings
                .chunks(4)
                .map(|chunk| {
                    let tables = &tables;
                    scope.spawn(move || {
                        let mut scratch = EvalScratch::for_tables(tables);
                        chunk
                            .iter()
                            .map(|m| tables.makespan_bfs(&mut scratch, m))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            chunks.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel, "bit-identical across threads");
    }

    /// The `strict-invariants` read-bound checker must actually fire:
    /// restoring a suffix snapshot at a positive position and then
    /// stepping position 0 is exactly the stale-prefix read the suffix
    /// layout forbids (docs/DETERMINISM.md).
    #[cfg(feature = "strict-invariants")]
    #[test]
    #[should_panic(expected = "below its restore floor")]
    fn strict_invariants_catch_replay_below_the_restore_floor() {
        let mut g = chain(16, 100e6);
        set_attrs(&mut g, 0.0, 1.0);
        let p = ref_platform();
        let tables = EvalTables::new(&g, &p);
        let mut scratch = EvalScratch::for_tables(&tables);
        let m = Mapping::all_default(&g, &p);
        let mut ckpt = ScheduleCheckpoints::new(4);
        tables
            .makespan_bfs_checkpointed(&mut scratch, &m, &mut ckpt)
            .unwrap();
        assert!(ckpt.suffix, "pop-order tables must record suffix snapshots");
        let from = ckpt.restore(8, &mut scratch);
        assert!(from > 0, "restore must land on a positive snapshot");
        let mut dev_buf = std::mem::take(&mut scratch.devices);
        let devices = tables.internal_devices(&mut dev_buf, &m, 0);
        let mut makespan = 0.0;
        tables.sim_step(&mut scratch, devices, 0, &mut makespan);
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        // Interleaving evaluations of different mappings through one
        // scratch never contaminates results.
        let mut g = random_sp_graph(&SpGenConfig::new(30, 5));
        augment(&mut g, &AugmentConfig::default(), 5);
        let p = ref_platform();
        let tables = EvalTables::new(&g, &p);
        let mut scratch = EvalScratch::for_tables(&tables);
        let a = Mapping::all_default(&g, &p);
        let b = Mapping::from_vec(
            (0..g.node_count())
                .map(|i| DeviceId((i % 2) as u32))
                .collect(),
        );
        let ms_a = tables.makespan_bfs(&mut scratch, &a);
        let ms_b = tables.makespan_bfs(&mut scratch, &b);
        for _ in 0..3 {
            assert_eq!(tables.makespan_bfs(&mut scratch, &a), ms_a);
            assert_eq!(tables.makespan_bfs(&mut scratch, &b), ms_b);
        }
    }
}

//! # spmap-model — platform model and model-based makespan evaluation
//!
//! Reconstruction of the fully model-based evaluation environment the paper
//! builds on (Wilhelm et al., CCPE 2023 — ref. 5 of the paper; see
//! DESIGN.md §4 for the substitution notes).  It provides:
//!
//! * [`Platform`] — a heterogeneous platform description: CPU/GPU/FPGA
//!   devices plus a bandwidth/latency link table.  The calibrated
//!   [`Platform::reference`] mirrors the paper's evaluation system (AMD
//!   Epyc 7351P + Radeon RX Vega 56 + Xilinx XCZ7045).
//! * [`cost`] — per-task execution-time and per-edge transfer-time cost
//!   functions (Amdahl multicore scaling, GPU dispatch efficiency, FPGA
//!   streamability pipelining).
//! * [`Mapping`] — a task → device assignment.
//! * [`Evaluator`] — the deterministic `O((V+E) log V)` list-schedule
//!   simulation computing the makespan of a mapping, with FPGA dataflow
//!   streaming support; plus the paper's reporting metric (minimum over a
//!   breadth-first schedule and `k` random schedules) and the *relative
//!   improvement* measure of §IV-A.
//!
//! The evaluator is the workhorse of every mapping algorithm in this
//! workspace: the decomposition mappers re-evaluate it for every candidate
//! subgraph move, the genetic algorithm uses it as its fitness function,
//! and all reported numbers come from it.

pub mod artifact;
pub mod cost;
pub mod eval;
pub mod fingerprint;
pub mod gantt;
pub mod mapping;
mod multi;
pub mod platform;
pub mod schedule;

pub use artifact::{
    artifact_key, masked_artifact_key, ArtifactCache, ArtifactCacheStats, EvalArtifact,
    DEFAULT_ARTIFACT_BUDGET_BYTES,
};
pub use eval::{
    relative_improvement, BfsCheckpoints, CheckpointSet, EvalScratch, EvalStats, EvalTables,
    Evaluator, Numbering, ScheduleCheckpoints, WindowSim, DEFAULT_CHECKPOINT_BUDGET_BYTES,
};
pub use fingerprint::{graph_fingerprint, platform_fingerprint, MappingFingerprint};
pub use gantt::{render_gantt, write_gantt};
pub use mapping::Mapping;
pub use platform::{Device, DeviceId, DeviceKind, DeviceSpec, Link, Platform};
pub use schedule::{OrderTables, ReportSchedules, SchedulePolicy};

//! Incremental mapping fingerprints.
//!
//! The candidate-evaluation engine in `spmap-core` memoizes makespans by
//! the *content* of the full mapping: because the evaluator is a pure
//! function of `(tables, mapping, ranks)`, two identical mappings always
//! produce bit-identical makespans, so a content keyed memo can never go
//! stale.  What makes this affordable is that a fingerprint updates in
//! `O(1)` per remapped task:
//!
//! * every `(task, device)` pair gets a fixed pseudo-random 128-bit code
//!   ([`assignment_code`]),
//! * a mapping's fingerprint is the XOR of the codes of all its
//!   assignments (Zobrist hashing, as used by game-tree transposition
//!   tables),
//! * remapping task `v` from `old` to `new` toggles two codes
//!   ([`MappingFingerprint::toggle`]), so a candidate move touching `k`
//!   tasks costs `2k` XORs — no rescan of the mapping.
//!
//! With 128-bit codes the collision probability across the few hundred
//! thousand distinct mappings of a mapper run is ≈ `k²/2^129` —
//! negligible even for the equivalence guarantees the engine makes.

use spmap_graph::{NodeId, TaskGraph};

use crate::mapping::Mapping;
use crate::platform::{DeviceSpec, Platform};
use crate::DeviceId;

/// The fixed 128-bit code of assigning task `v` to device `d`.
///
/// Derived by running two independent SplitMix64 finalizers over the
/// packed `(task, device)` index; no table is materialized, so any graph
/// size works without allocation.
#[inline]
pub fn assignment_code(v: NodeId, d: DeviceId) -> u128 {
    let packed = ((v.0 as u64) << 32) | d.0 as u64;
    let lo = mix64(packed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let hi = mix64(packed.wrapping_add(0xD1B5_4A32_D192_ED03));
    ((hi as u128) << 64) | lo as u128
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-sensitive 128-bit content hash, built by absorbing one
/// 64-bit word at a time.  Unlike the XOR-of-codes Zobrist scheme above
/// (whose order-freeness is the point for *mappings*), structural
/// content — task attributes, edge lists, link tables — is
/// position-dependent, so each word is chained through both lanes.
/// Not cryptographic; used as a cache key where a collision costs a
/// wrong-but-deterministic table reuse, with the same ≈ `k²/2^129`
/// birthday bound as the mapping memo.
struct ContentHash {
    lo: u64,
    hi: u64,
}

impl ContentHash {
    fn new(domain: u64) -> Self {
        Self {
            lo: mix64(domain ^ 0x9E37_79B9_7F4A_7C15),
            hi: mix64(domain ^ 0xD1B5_4A32_D192_ED03),
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.lo = mix64(self.lo ^ word);
        self.hi = mix64(self.hi.wrapping_add(mix64(word ^ 0xA076_1D64_78BD_642F)));
    }

    #[inline]
    fn absorb_f64(&mut self, x: f64) {
        // Bit pattern, not value: `-0.0` ≠ `0.0` and every NaN payload
        // is distinct.  Conservative — distinct bits never collapse.
        self.absorb(x.to_bits());
    }

    fn finish(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// A 128-bit content fingerprint of a task graph: node count plus every
/// task's model attributes (in node-id order) and every edge's
/// `(src, dst, bytes)` (in edge-id order).
///
/// This covers exactly the inputs [`crate::EvalTables`] reads from the
/// graph.  Task *names* are deliberately excluded (they never reach the
/// evaluator), and the edge order is included because it is semantic:
/// the FPGA streaming grant goes to the first same-device out-edge.
/// Two graphs with equal fingerprints are therefore interchangeable for
/// table construction and makespan evaluation.
pub fn graph_fingerprint(graph: &TaskGraph) -> u128 {
    let mut h = ContentHash::new(0x0067_7261_7068_u64); // "graph"
    h.absorb(graph.node_count() as u64);
    h.absorb(graph.edge_count() as u64);
    for v in graph.nodes() {
        let t = graph.task(v);
        h.absorb_f64(t.complexity);
        h.absorb_f64(t.data_points);
        h.absorb_f64(t.parallelizability);
        h.absorb_f64(t.streamability);
        h.absorb_f64(t.area);
    }
    for e in graph.edges() {
        h.absorb(e.src.0 as u64);
        h.absorb(e.dst.0 as u64);
        h.absorb_f64(e.bytes);
    }
    h.finish()
}

/// A 128-bit content fingerprint of a platform: device count, every
/// device's kind and spec parameters (in device-id order), the default
/// device, and the full directed link table.
///
/// Like [`graph_fingerprint`], this covers exactly what the evaluator
/// reads; device *names* are excluded.
pub fn platform_fingerprint(platform: &Platform) -> u128 {
    let mut h = ContentHash::new(0x706c_6174u64); // "plat"
    h.absorb(platform.device_count() as u64);
    h.absorb(platform.default_device().0 as u64);
    for d in platform.device_ids() {
        match &platform.device(d).spec {
            DeviceSpec::Cpu {
                cores,
                core_throughput,
            } => {
                h.absorb(1);
                h.absorb_f64(*cores);
                h.absorb_f64(*core_throughput);
            }
            DeviceSpec::Gpu {
                cores,
                core_throughput,
                dispatch_efficiency,
                launch_latency,
                serial_throughput,
            } => {
                h.absorb(2);
                h.absorb_f64(*cores);
                h.absorb_f64(*core_throughput);
                h.absorb_f64(*dispatch_efficiency);
                h.absorb_f64(*launch_latency);
                h.absorb_f64(*serial_throughput);
            }
            DeviceSpec::Fpga {
                base_throughput,
                max_streamability,
                area_capacity,
                fill_fraction,
            } => {
                h.absorb(3);
                h.absorb_f64(*base_throughput);
                h.absorb_f64(*max_streamability);
                h.absorb_f64(*area_capacity);
                h.absorb_f64(*fill_fraction);
            }
        }
    }
    for from in platform.device_ids() {
        for to in platform.device_ids() {
            let link = platform.link(from, to);
            h.absorb_f64(link.bandwidth);
            h.absorb_f64(link.latency);
        }
    }
    h.finish()
}

/// An incrementally maintained content fingerprint of a [`Mapping`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MappingFingerprint(u128);

impl MappingFingerprint {
    /// Fingerprint of `mapping`, built by a full scan (`O(V)`).
    pub fn of(mapping: &Mapping) -> Self {
        let mut fp = 0u128;
        for (i, &d) in mapping.as_slice().iter().enumerate() {
            fp ^= assignment_code(NodeId(i as u32), d);
        }
        Self(fp)
    }

    /// Account for remapping task `v` from `old` to `new` (`O(1)`).
    /// Toggling with `old == new` is a no-op by XOR cancellation.
    #[inline]
    pub fn toggle(&mut self, v: NodeId, old: DeviceId, new: DeviceId) {
        self.0 ^= assignment_code(v, old) ^ assignment_code(v, new);
    }

    /// The fingerprint after remapping `v` from `old` to `new`, without
    /// mutating `self`.
    #[inline]
    pub fn with(mut self, v: NodeId, old: DeviceId, new: DeviceId) -> Self {
        self.toggle(v, old, new);
        self
    }

    /// The raw 128-bit value (memo key).
    #[inline]
    pub fn value(self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_full_scan() {
        let mut m = Mapping::uniform(20, DeviceId(0));
        let mut fp = MappingFingerprint::of(&m);
        let moves = [(3u32, 1u32), (7, 2), (3, 2), (19, 1), (3, 0), (7, 2)];
        for &(v, d) in &moves {
            let v = NodeId(v);
            let old = m.device(v);
            fp.toggle(v, old, DeviceId(d));
            m.set(v, DeviceId(d));
            assert_eq!(fp, MappingFingerprint::of(&m), "after {v} -> d{d}");
        }
    }

    #[test]
    fn toggle_is_involutive_and_order_free() {
        let m = Mapping::uniform(10, DeviceId(0));
        let base = MappingFingerprint::of(&m);
        // Applying and reverting restores the fingerprint.
        let fp = base.with(NodeId(1), DeviceId(0), DeviceId(2)).with(
            NodeId(1),
            DeviceId(2),
            DeviceId(0),
        );
        assert_eq!(fp, base);
        // Disjoint toggles commute.
        let ab = base.with(NodeId(1), DeviceId(0), DeviceId(2)).with(
            NodeId(4),
            DeviceId(0),
            DeviceId(1),
        );
        let ba = base.with(NodeId(4), DeviceId(0), DeviceId(1)).with(
            NodeId(1),
            DeviceId(0),
            DeviceId(2),
        );
        assert_eq!(ab, ba);
    }

    #[test]
    fn distinct_mappings_distinct_fingerprints() {
        // Not a collision proof, but catches degenerate mixing: all
        // single-move neighbors of a base mapping must differ pairwise.
        let m = Mapping::uniform(32, DeviceId(0));
        let base = MappingFingerprint::of(&m);
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.value());
        for v in 0..32u32 {
            for d in 1..4u32 {
                let fp = base.with(NodeId(v), DeviceId(0), DeviceId(d));
                assert!(seen.insert(fp.value()), "collision at {v}/{d}");
            }
        }
    }

    #[test]
    fn graph_fingerprint_tracks_content_not_names() {
        use spmap_graph::{GraphBuilder, Task};
        let build = |area: f64, bytes: f64, name: &str| {
            let mut b = GraphBuilder::new();
            let a = b.add_task(Task {
                name: name.into(),
                area,
                ..Task::default()
            });
            let c = b.add_task(Task::named("sink"));
            b.add_edge(a, c, bytes).unwrap();
            b.build().unwrap()
        };
        let base = graph_fingerprint(&build(1.0, 64.0, "x"));
        assert_eq!(
            base,
            graph_fingerprint(&build(1.0, 64.0, "renamed")),
            "names never reach the evaluator"
        );
        assert_ne!(base, graph_fingerprint(&build(2.0, 64.0, "x")));
        assert_ne!(base, graph_fingerprint(&build(1.0, 65.0, "x")));
    }

    #[test]
    fn platform_fingerprint_tracks_content() {
        let reference = platform_fingerprint(&Platform::reference());
        assert_eq!(
            reference,
            platform_fingerprint(&Platform::reference()),
            "deterministic"
        );
        assert_ne!(reference, platform_fingerprint(&Platform::cpu_only()));
        assert_ne!(reference, platform_fingerprint(&Platform::cpu_gpu()));
    }

    #[test]
    fn same_device_toggle_is_noop() {
        let m = Mapping::uniform(5, DeviceId(1));
        let base = MappingFingerprint::of(&m);
        assert_eq!(base.with(NodeId(2), DeviceId(1), DeviceId(1)), base);
    }
}

//! Incremental mapping fingerprints.
//!
//! The candidate-evaluation engine in `spmap-core` memoizes makespans by
//! the *content* of the full mapping: because the evaluator is a pure
//! function of `(tables, mapping, ranks)`, two identical mappings always
//! produce bit-identical makespans, so a content keyed memo can never go
//! stale.  What makes this affordable is that a fingerprint updates in
//! `O(1)` per remapped task:
//!
//! * every `(task, device)` pair gets a fixed pseudo-random 128-bit code
//!   ([`assignment_code`]),
//! * a mapping's fingerprint is the XOR of the codes of all its
//!   assignments (Zobrist hashing, as used by game-tree transposition
//!   tables),
//! * remapping task `v` from `old` to `new` toggles two codes
//!   ([`MappingFingerprint::toggle`]), so a candidate move touching `k`
//!   tasks costs `2k` XORs — no rescan of the mapping.
//!
//! With 128-bit codes the collision probability across the few hundred
//! thousand distinct mappings of a mapper run is ≈ `k²/2^129` —
//! negligible even for the equivalence guarantees the engine makes.

use spmap_graph::NodeId;

use crate::mapping::Mapping;
use crate::DeviceId;

/// The fixed 128-bit code of assigning task `v` to device `d`.
///
/// Derived by running two independent SplitMix64 finalizers over the
/// packed `(task, device)` index; no table is materialized, so any graph
/// size works without allocation.
#[inline]
pub fn assignment_code(v: NodeId, d: DeviceId) -> u128 {
    let packed = ((v.0 as u64) << 32) | d.0 as u64;
    let lo = mix64(packed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let hi = mix64(packed.wrapping_add(0xD1B5_4A32_D192_ED03));
    ((hi as u128) << 64) | lo as u128
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incrementally maintained content fingerprint of a [`Mapping`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MappingFingerprint(u128);

impl MappingFingerprint {
    /// Fingerprint of `mapping`, built by a full scan (`O(V)`).
    pub fn of(mapping: &Mapping) -> Self {
        let mut fp = 0u128;
        for (i, &d) in mapping.as_slice().iter().enumerate() {
            fp ^= assignment_code(NodeId(i as u32), d);
        }
        Self(fp)
    }

    /// Account for remapping task `v` from `old` to `new` (`O(1)`).
    /// Toggling with `old == new` is a no-op by XOR cancellation.
    #[inline]
    pub fn toggle(&mut self, v: NodeId, old: DeviceId, new: DeviceId) {
        self.0 ^= assignment_code(v, old) ^ assignment_code(v, new);
    }

    /// The fingerprint after remapping `v` from `old` to `new`, without
    /// mutating `self`.
    #[inline]
    pub fn with(mut self, v: NodeId, old: DeviceId, new: DeviceId) -> Self {
        self.toggle(v, old, new);
        self
    }

    /// The raw 128-bit value (memo key).
    #[inline]
    pub fn value(self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_full_scan() {
        let mut m = Mapping::uniform(20, DeviceId(0));
        let mut fp = MappingFingerprint::of(&m);
        let moves = [(3u32, 1u32), (7, 2), (3, 2), (19, 1), (3, 0), (7, 2)];
        for &(v, d) in &moves {
            let v = NodeId(v);
            let old = m.device(v);
            fp.toggle(v, old, DeviceId(d));
            m.set(v, DeviceId(d));
            assert_eq!(fp, MappingFingerprint::of(&m), "after {v} -> d{d}");
        }
    }

    #[test]
    fn toggle_is_involutive_and_order_free() {
        let m = Mapping::uniform(10, DeviceId(0));
        let base = MappingFingerprint::of(&m);
        // Applying and reverting restores the fingerprint.
        let fp = base.with(NodeId(1), DeviceId(0), DeviceId(2)).with(
            NodeId(1),
            DeviceId(2),
            DeviceId(0),
        );
        assert_eq!(fp, base);
        // Disjoint toggles commute.
        let ab = base.with(NodeId(1), DeviceId(0), DeviceId(2)).with(
            NodeId(4),
            DeviceId(0),
            DeviceId(1),
        );
        let ba = base.with(NodeId(4), DeviceId(0), DeviceId(1)).with(
            NodeId(1),
            DeviceId(0),
            DeviceId(2),
        );
        assert_eq!(ab, ba);
    }

    #[test]
    fn distinct_mappings_distinct_fingerprints() {
        // Not a collision proof, but catches degenerate mixing: all
        // single-move neighbors of a base mapping must differ pairwise.
        let m = Mapping::uniform(32, DeviceId(0));
        let base = MappingFingerprint::of(&m);
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.value());
        for v in 0..32u32 {
            for d in 1..4u32 {
                let fp = base.with(NodeId(v), DeviceId(0), DeviceId(d));
                assert!(seen.insert(fp.value()), "collision at {v}/{d}");
            }
        }
    }

    #[test]
    fn same_device_toggle_is_noop() {
        let m = Mapping::uniform(5, DeviceId(1));
        let base = MappingFingerprint::of(&m);
        assert_eq!(base.with(NodeId(2), DeviceId(1), DeviceId(1)), base);
    }
}

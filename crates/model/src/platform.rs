//! Heterogeneous platform description: devices and interconnect links.
//!
//! The model follows the paper's system (§IV-A): one multicore CPU (the
//! *default device*), one GPU and one FPGA, connected by PCIe-like links.
//! Device parameters are abstract but calibrated so that the qualitative
//! trade-offs of the paper hold:
//!
//! * the CPU is a solid all-rounder; tasks scale with parallelizability
//!   through Amdahl's law over its cores;
//! * the GPU has enormous peak throughput but collapses on poorly
//!   parallelizable tasks (the Amdahl cliff) and every off-device edge
//!   pays PCIe transfer costs;
//! * the FPGA is slow per cycle but pipelines streamable tasks, executes
//!   resident tasks *spatially* (concurrently) and can stream data along
//!   co-located task chains, at the price of a finite area budget.

use std::fmt;

/// Identifier of a device inside a [`Platform`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Position in the platform's device array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Broad device class; drives the evaluator's execution semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeviceKind {
    /// Temporal device, Amdahl multicore scaling.
    Cpu,
    /// Temporal device, Amdahl scaling over many cores with a dispatch
    /// efficiency and per-task launch latency.
    Gpu,
    /// Spatial dataflow device: resident tasks run concurrently, streams
    /// along co-located edges, bounded by an area budget.
    Fpga,
}

/// Kind-specific device parameters.
#[derive(Clone, Debug)]
pub enum DeviceSpec {
    /// Multicore CPU.
    Cpu {
        /// Number of cores available to a single task.
        cores: f64,
        /// Abstract operations per second per core.
        core_throughput: f64,
    },
    /// GPU-style accelerator.
    Gpu {
        /// Number of parallel lanes.
        cores: f64,
        /// Abstract operations per second per lane.
        core_throughput: f64,
        /// Fraction of peak reachable by real kernels (0, 1].
        dispatch_efficiency: f64,
        /// Fixed kernel-launch latency per task, in seconds.
        launch_latency: f64,
        /// Throughput of the *serial* fraction of a task (heterogeneous
        /// Amdahl: GPU scalar execution is far slower than a CPU core, so
        /// the cliff for imperfectly parallelizable tasks is steep — the
        /// effect the paper's 50 %-perfect augmentation targets).
        serial_throughput: f64,
    },
    /// FPGA-style dataflow accelerator.
    Fpga {
        /// Abstract operations per second per unit of streamability.
        base_throughput: f64,
        /// Cap on the exploitable streamability factor.
        max_streamability: f64,
        /// Total area budget, in abstract area units.
        area_capacity: f64,
        /// Pipeline-fill fraction for streaming edges (DESIGN §6.3).
        fill_fraction: f64,
    },
}

/// A named processing unit.
#[derive(Clone, Debug)]
pub struct Device {
    /// Human-readable name (e.g. `"epyc7351p"`).
    pub name: String,
    /// Kind-specific parameters.
    pub spec: DeviceSpec,
}

impl Device {
    /// The broad class of this device.
    pub fn kind(&self) -> DeviceKind {
        match self.spec {
            DeviceSpec::Cpu { .. } => DeviceKind::Cpu,
            DeviceSpec::Gpu { .. } => DeviceKind::Gpu,
            DeviceSpec::Fpga { .. } => DeviceKind::Fpga,
        }
    }

    /// Area budget for FPGAs, 0 otherwise.
    pub fn area_capacity(&self) -> f64 {
        match self.spec {
            DeviceSpec::Fpga { area_capacity, .. } => area_capacity,
            _ => 0.0,
        }
    }
}

/// A directed interconnect link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Bytes per second.
    pub bandwidth: f64,
    /// Fixed latency in seconds.
    pub latency: f64,
}

impl Link {
    /// Time to move `bytes` across this link.
    #[inline]
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// A heterogeneous platform: devices plus a full link matrix.
#[derive(Clone, Debug)]
pub struct Platform {
    devices: Vec<Device>,
    /// `links[from][to]`; the diagonal is ignored (same-device transfers
    /// are free in the model).
    links: Vec<Vec<Link>>,
    /// The device that hosts the initial all-default mapping (the CPU in
    /// the paper).
    default_device: DeviceId,
}

impl Platform {
    /// Build a platform from devices with a uniform placeholder link
    /// (10 GB/s, 20 µs); customize with [`Platform::set_link`].
    pub fn new(devices: Vec<Device>, default_device: DeviceId) -> Self {
        assert!(!devices.is_empty());
        assert!(default_device.index() < devices.len());
        let m = devices.len();
        let links = vec![
            vec![
                Link {
                    bandwidth: 10e9,
                    latency: 20e-6,
                };
                m
            ];
            m
        ];
        Self {
            devices,
            links,
            default_device,
        }
    }

    /// Set both directions of the link between `a` and `b`.
    pub fn set_link(&mut self, a: DeviceId, b: DeviceId, link: Link) {
        self.links[a.index()][b.index()] = link;
        self.links[b.index()][a.index()] = link;
    }

    /// Number of devices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Iterator over all device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u32).map(DeviceId)
    }

    /// The device stored at `d`.
    #[inline]
    pub fn device(&self, d: DeviceId) -> &Device {
        &self.devices[d.index()]
    }

    /// Mutable access to the device stored at `d` (for building platform
    /// variants in experiments and ablations).
    #[inline]
    pub fn device_mut(&mut self, d: DeviceId) -> &mut Device {
        &mut self.devices[d.index()]
    }

    /// The default device (CPU).
    #[inline]
    pub fn default_device(&self) -> DeviceId {
        self.default_device
    }

    /// `true` if `d` is a spatial dataflow device.
    #[inline]
    pub fn is_fpga(&self, d: DeviceId) -> bool {
        self.devices[d.index()].kind() == DeviceKind::Fpga
    }

    /// Pipeline-fill fraction of `d` (0 for non-FPGAs).
    #[inline]
    pub fn fill_fraction(&self, d: DeviceId) -> f64 {
        match self.devices[d.index()].spec {
            DeviceSpec::Fpga { fill_fraction, .. } => fill_fraction,
            _ => 0.0,
        }
    }

    /// The directed link parameters `from -> to` (the diagonal is a
    /// placeholder — same-device transfers are free in the model).
    #[inline]
    pub fn link(&self, from: DeviceId, to: DeviceId) -> Link {
        self.links[from.index()][to.index()]
    }

    /// Transfer time for `bytes` moving from device `from` to device `to`.
    /// Same-device transfers are free (shared memory / on-chip streams).
    #[inline]
    pub fn transfer_time(&self, bytes: f64, from: DeviceId, to: DeviceId) -> f64 {
        if from == to {
            0.0
        } else {
            self.links[from.index()][to.index()].transfer_time(bytes)
        }
    }

    /// The calibrated reference platform of the paper's evaluation system:
    /// AMD Epyc 7351P (16 cores) + AMD Radeon RX Vega 56 + Xilinx XCZ7045,
    /// star-connected over PCIe-like links.  Device 0 (CPU) is the default
    /// device.  See DESIGN.md §6.2 for the calibration rationale.
    pub fn reference() -> Self {
        let cpu = Device {
            name: "epyc7351p".into(),
            spec: DeviceSpec::Cpu {
                cores: 16.0,
                core_throughput: 0.3e9,
            },
        };
        let gpu = Device {
            name: "vega56".into(),
            spec: DeviceSpec::Gpu {
                cores: 3584.0,
                core_throughput: 0.08e9,
                dispatch_efficiency: 0.35,
                launch_latency: 10e-6,
                serial_throughput: 0.015e9,
            },
        };
        let fpga = Device {
            name: "xcz7045".into(),
            spec: DeviceSpec::Fpga {
                // Calibrated so a lone task is always *slower* on the
                // FPGA than on the CPU (0.02e9 · s_max < CPU serial
                // 0.3e9): un-streamed offload never pays per-task, so the
                // FPGA's value comes from pipelined chains — §III-B's
                // local-minimum scenario.  See EXPERIMENTS.md.
                base_throughput: 0.02e9,
                max_streamability: 7.0,
                // ~40 median tasks (median area = 8 x 7.4 = 59 units):
                // enough fabric for several streaming chains.  See
                // EXPERIMENTS.md (calibration notes).
                area_capacity: 2400.0,
                fill_fraction: 0.05,
            },
        };
        let mut p = Platform::new(vec![cpu, gpu, fpga], DeviceId(0));
        p.set_link(
            DeviceId(0),
            DeviceId(1),
            Link {
                bandwidth: 12e9,
                latency: 20e-6,
            },
        );
        // FPGA links are far below PCIe peak: the effective rate includes
        // DMA setup, driver overhead and width conversion into the fabric
        // clock domain — calibrated so single-task offloads lose to the
        // transfer cost (the paper's §III-B local-minimum scenario).
        p.set_link(
            DeviceId(0),
            DeviceId(2),
            Link {
                bandwidth: 1.2e9,
                latency: 30e-6,
            },
        );
        // GPU <-> FPGA is staged through the host.
        p.set_link(
            DeviceId(1),
            DeviceId(2),
            Link {
                bandwidth: 1.0e9,
                latency: 50e-6,
            },
        );
        p
    }

    /// A platform consisting of the reference CPU only (the baseline every
    /// relative improvement is measured against).
    pub fn cpu_only() -> Self {
        Platform::new(
            vec![Device {
                name: "epyc7351p".into(),
                spec: DeviceSpec::Cpu {
                    cores: 16.0,
                    core_throughput: 0.3e9,
                },
            }],
            DeviceId(0),
        )
    }

    /// Reference CPU + GPU, no FPGA — the "low heterogeneity" setting the
    /// HEFT family was designed for.
    pub fn cpu_gpu() -> Self {
        let mut p = Platform::reference();
        p.devices.truncate(2);
        p.links.truncate(2);
        for row in &mut p.links {
            row.truncate(2);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_platform_shape() {
        let p = Platform::reference();
        assert_eq!(p.device_count(), 3);
        assert_eq!(p.default_device(), DeviceId(0));
        assert_eq!(p.device(DeviceId(0)).kind(), DeviceKind::Cpu);
        assert_eq!(p.device(DeviceId(1)).kind(), DeviceKind::Gpu);
        assert_eq!(p.device(DeviceId(2)).kind(), DeviceKind::Fpga);
        assert!(p.is_fpga(DeviceId(2)));
        assert!(!p.is_fpga(DeviceId(0)));
        assert_eq!(p.device(DeviceId(2)).area_capacity(), 2400.0);
        assert_eq!(p.fill_fraction(DeviceId(2)), 0.05);
        assert_eq!(p.fill_fraction(DeviceId(0)), 0.0);
    }

    #[test]
    fn transfer_times() {
        let p = Platform::reference();
        // Same device: free.
        assert_eq!(p.transfer_time(1e9, DeviceId(0), DeviceId(0)), 0.0);
        // CPU -> GPU: 100 MB over 12 GB/s + 20 µs.
        let t = p.transfer_time(100e6, DeviceId(0), DeviceId(1));
        assert!((t - (100e6 / 12e9 + 20e-6)).abs() < 1e-12);
        // Symmetric.
        assert_eq!(
            p.transfer_time(100e6, DeviceId(0), DeviceId(1)),
            p.transfer_time(100e6, DeviceId(1), DeviceId(0))
        );
    }

    #[test]
    fn link_transfer_time() {
        let l = Link {
            bandwidth: 1e9,
            latency: 1e-3,
        };
        assert!((l.transfer_time(2e9) - 2.001).abs() < 1e-12);
    }

    #[test]
    fn cpu_only_platform() {
        let p = Platform::cpu_only();
        assert_eq!(p.device_count(), 1);
        assert_eq!(p.device(DeviceId(0)).kind(), DeviceKind::Cpu);
    }

    #[test]
    fn cpu_gpu_platform() {
        let p = Platform::cpu_gpu();
        assert_eq!(p.device_count(), 2);
        assert_eq!(p.device(DeviceId(1)).kind(), DeviceKind::Gpu);
        // Link survives truncation.
        let t = p.transfer_time(12e9, DeviceId(0), DeviceId(1));
        assert!((t - (1.0 + 20e-6)).abs() < 1e-9);
    }
}

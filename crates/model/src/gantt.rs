//! Text Gantt rendering of simulated schedules — for examples, debugging
//! and documentation.  One lane per device; tasks are drawn as `[id---]`
//! blocks on a common time axis.
//!
//! [`write_gantt`] streams the chart into any [`fmt::Write`] sink and
//! propagates write errors instead of panicking; [`render_gantt`] is the
//! convenience wrapper producing a `String` (whose writer is infallible).
//! For `io::Write` sinks, adapt with a `String` buffer or a small
//! `fmt::Write`-over-`io::Write` shim and forward the `fmt::Result`.

use std::fmt::{self, Write};

use spmap_graph::TaskGraph;

use crate::eval::Schedule;
use crate::mapping::Mapping;
use crate::platform::Platform;

/// Write `schedule` as a text Gantt chart with `width` columns into
/// `out`, propagating any writer error.
///
/// Concurrent tasks on the same device (FPGA pipelines) are folded into
/// extra lanes of that device as needed.
pub fn write_gantt<W: Write>(
    out: &mut W,
    graph: &TaskGraph,
    platform: &Platform,
    mapping: &Mapping,
    schedule: &Schedule,
    width: usize,
) -> fmt::Result {
    let width = width.max(20);
    let horizon = schedule.makespan.max(1e-12);
    let col = |t: f64| -> usize { ((t / horizon) * (width as f64 - 1.0)).round() as usize };

    writeln!(
        out,
        "makespan {:.4}s — one column ≈ {:.4}s",
        schedule.makespan,
        horizon / width as f64
    )?;
    for d in platform.device_ids() {
        // Collect this device's tasks sorted by start.
        let mut tasks: Vec<usize> = (0..graph.node_count())
            .filter(|&v| mapping.device(spmap_graph::NodeId(v as u32)) == d)
            .collect();
        tasks.sort_by(|&a, &b| schedule.start[a].total_cmp(&schedule.start[b]));
        // Greedy lane assignment for overlapping tasks.
        let mut lanes: Vec<(Vec<usize>, f64)> = Vec::new(); // (tasks, last finish)
        for v in tasks {
            match lanes
                .iter_mut()
                .find(|(_, free)| *free <= schedule.start[v] + 1e-12)
            {
                Some((lane, free)) => {
                    lane.push(v);
                    *free = schedule.finish[v];
                }
                None => lanes.push((vec![v], schedule.finish[v])),
            }
        }
        let name = &platform.device(d).name;
        if lanes.is_empty() {
            writeln!(out, "{name:>12} | (idle)")?;
            continue;
        }
        for (li, (lane, _)) in lanes.iter().enumerate() {
            let label = if li == 0 { name.as_str() } else { "" };
            let mut row = vec![b' '; width];
            for &v in lane {
                let s = col(schedule.start[v]);
                let f = col(schedule.finish[v]).max(s + 1).min(width);
                let id = v.to_string();
                for (k, slot) in row[s..f].iter_mut().enumerate() {
                    *slot = if k < id.len() { id.as_bytes()[k] } else { b'#' };
                }
            }
            writeln!(out, "{label:>12} |{}|", String::from_utf8_lossy(&row))?;
        }
    }
    Ok(())
}

/// Render `schedule` as a text Gantt chart with `width` columns.
///
/// Convenience wrapper over [`write_gantt`]; writing into a `String`
/// cannot fail, so this stays infallible.
pub fn render_gantt(
    graph: &TaskGraph,
    platform: &Platform,
    mapping: &Mapping,
    schedule: &Schedule,
    width: usize,
) -> String {
    let mut out = String::new();
    write_gantt(&mut out, graph, platform, mapping, schedule, width)
        .expect("fmt::Write for String is infallible");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::schedule::SchedulePolicy;
    use crate::DeviceId;
    use spmap_graph::gen::chain;
    use spmap_graph::NodeId;

    #[test]
    fn gantt_renders_all_devices_and_tasks() {
        let mut g = chain(4, 100e6);
        for v in 0..4 {
            let t = g.task_mut(NodeId(v));
            t.complexity = 8.0;
            t.data_points = 1e7;
        }
        let p = Platform::reference();
        let mut ev = Evaluator::new(&g, &p);
        let mut m = Mapping::all_default(&g, &p);
        m.set(NodeId(2), DeviceId(1));
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let out = render_gantt(&g, &p, &m, &sched, 60);
        assert!(out.contains("epyc7351p"));
        assert!(out.contains("vega56"));
        assert!(out.contains("makespan"));
        // Task ids appear in some lane.
        assert!(out.contains('0') && out.contains('2'));
        // FPGA lane is idle.
        assert!(out.contains("(idle)"));
    }

    /// A writer that fails after a byte budget — rendering into it must
    /// surface the error through `fmt::Result`, never panic.
    struct FailingWriter {
        budget: usize,
    }

    impl std::fmt::Write for FailingWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            if s.len() > self.budget {
                return Err(std::fmt::Error);
            }
            self.budget -= s.len();
            Ok(())
        }
    }

    #[test]
    fn failing_writer_propagates_error_without_panicking() {
        let mut g = chain(4, 100e6);
        for v in 0..4 {
            let t = g.task_mut(NodeId(v));
            t.complexity = 8.0;
            t.data_points = 1e7;
        }
        let p = Platform::reference();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::all_default(&g, &p);
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        // A zero-budget writer fails on the very first write.
        let mut w = FailingWriter { budget: 0 };
        assert_eq!(
            write_gantt(&mut w, &g, &p, &m, &sched, 60),
            Err(std::fmt::Error),
            "error must propagate, not panic"
        );
        // A mid-chart failure (header fits, body doesn't) also propagates.
        let mut w = FailingWriter { budget: 48 };
        assert_eq!(
            write_gantt(&mut w, &g, &p, &m, &sched, 60),
            Err(std::fmt::Error)
        );
        // And the infallible wrapper still works.
        assert!(render_gantt(&g, &p, &m, &sched, 60).contains("makespan"));
    }

    #[test]
    fn overlapping_fpga_pipeline_gets_extra_lanes() {
        let mut g = chain(3, 100e6);
        for v in 0..3 {
            let t = g.task_mut(NodeId(v));
            t.complexity = 8.0;
            t.data_points = 1e7;
            t.streamability = 6.0;
            t.area = 10.0;
        }
        let p = Platform::reference();
        let mut ev = Evaluator::new(&g, &p);
        let m = Mapping::uniform(3, DeviceId(2));
        let sched = ev.simulate(&m, SchedulePolicy::Bfs).unwrap();
        let out = render_gantt(&g, &p, &m, &sched, 60);
        // Streaming pipeline: tasks overlap, so the FPGA needs >1 lane —
        // count the rows between the header and the end.
        let lanes = out.lines().filter(|l| l.contains('|')).count();
        assert!(
            lanes > 3,
            "expected extra FPGA lanes, got {lanes} rows:\n{out}"
        );
    }
}

//! Candidate subgraph sets for decomposition mapping (paper §III-B/C).
//!
//! * [`single_node_subgraphs`] — every task alone (§III-B), the minimal
//!   linear-size set that can still reach any mapping.
//! * [`series_parallel_subgraphs`] — §III-C: all single nodes, plus
//!   * for each **series** operation of the decomposition forest, the
//!     nodes of the operation *except* its start and end node (they may
//!     have edges to siblings), and
//!   * for each **parallel** operation, the nodes of the operation
//!     *including* start and end node (they act as the single
//!     input/output of the subgraph).
//!
//! General DAGs are normalized to two terminals first; virtual terminal
//! nodes never appear in the produced subgraphs.  Subgraphs are
//! deduplicated (sorted node lists), so for the paper's Fig. 1 graph the
//! set is exactly
//! `{{0},{1},{2},{3},{4},{5},{1,2,3},{0,1,2,3,4,5}}`.

use std::collections::HashSet;

use spmap_graph::{ops, NodeId, TaskGraph};

use crate::forest::{decompose_forest, CutPolicy};
use crate::sptree::SpOp;

/// A set of candidate subgraphs; each is a sorted, deduplicated node list.
#[derive(Clone, Debug)]
pub struct SubgraphSet {
    subgraphs: Vec<Vec<NodeId>>,
}

impl SubgraphSet {
    /// The subgraphs (sorted node lists).
    pub fn subgraphs(&self) -> &[Vec<NodeId>] {
        &self.subgraphs
    }

    /// Number of candidate subgraphs.
    pub fn len(&self) -> usize {
        self.subgraphs.len()
    }

    /// `true` if no subgraphs are present.
    pub fn is_empty(&self) -> bool {
        self.subgraphs.is_empty()
    }

    /// Iterate over subgraph node lists.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<NodeId>> {
        self.subgraphs.iter()
    }

    fn from_raw(raw: Vec<Vec<NodeId>>) -> Self {
        let mut seen: HashSet<Vec<NodeId>> = HashSet::with_capacity(raw.len());
        let mut subgraphs = Vec::with_capacity(raw.len());
        for mut s in raw {
            s.sort_unstable();
            s.dedup();
            if s.is_empty() {
                continue;
            }
            if seen.insert(s.clone()) {
                subgraphs.push(s);
            }
        }
        Self { subgraphs }
    }
}

/// The single-node subgraph set (§III-B): one subgraph per task.
pub fn single_node_subgraphs(g: &TaskGraph) -> SubgraphSet {
    SubgraphSet {
        subgraphs: g.nodes().map(|v| vec![v]).collect(),
    }
}

/// The series-parallel subgraph set (§III-C) built from the decomposition
/// forest of `g` (normalized to two terminals internally; `policy` governs
/// conflict cuts on non-SP graphs).
pub fn series_parallel_subgraphs(g: &TaskGraph, policy: CutPolicy) -> SubgraphSet {
    let n_real = g.node_count();
    if g.edge_count() == 0 {
        return single_node_subgraphs(g);
    }
    let norm = ops::normalize_terminals(g);
    let result = decompose_forest(&norm.graph, norm.source, norm.sink, policy);
    let forest = &result.forest;

    // Step 1: all single nodes.
    let mut raw: Vec<Vec<NodeId>> = g.nodes().map(|v| vec![v]).collect();

    // Steps 3 & 4: one subgraph per inner operation.
    for t in forest.iter_tree_nodes() {
        let node = forest.node(t);
        match node.op {
            SpOp::Leaf(_) => {}
            SpOp::Series => {
                let mut nodes = forest.collect_nodes(t, &norm.graph);
                nodes.retain(|&v| v != node.source && v != node.sink && v.index() < n_real);
                raw.push(nodes);
            }
            SpOp::Parallel => {
                let mut nodes = forest.collect_nodes(t, &norm.graph);
                nodes.retain(|&v| v.index() < n_real);
                raw.push(nodes);
            }
        }
    }
    SubgraphSet::from_raw(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{
        almost_sp_graph, chain, fig1_graph, fork_join, random_sp_graph, SpGenConfig,
    };

    fn as_sets(s: &SubgraphSet) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = s
            .iter()
            .map(|sg| sg.iter().map(|n| n.0).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn single_node_set() {
        let g = chain(4, 1.0);
        let s = single_node_subgraphs(&g);
        assert_eq!(s.len(), 4);
        assert_eq!(as_sets(&s), vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn fig1_matches_paper_subgraph_set() {
        // Paper §III-C: S = {{0},{1},{2},{3},{4},{5},{1,2,3},{0,1,2,3,4,5}}.
        let g = fig1_graph(1.0);
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        let expect: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 1, 2, 3, 4, 5],
            vec![1],
            vec![1, 2, 3],
            vec![2],
            vec![3],
            vec![4],
            vec![5],
        ];
        assert_eq!(as_sets(&s), expect);
    }

    #[test]
    fn chain_interior() {
        // Chain 0-1-2-3-4: series operation interior = {1,2,3}; plus the
        // single nodes.
        let g = chain(5, 1.0);
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        let sets = as_sets(&s);
        assert!(sets.contains(&vec![1, 2, 3]));
        assert_eq!(s.len(), 6); // 5 singletons + 1 interior
    }

    #[test]
    fn fork_join_span() {
        // Parallel operation spans the whole graph (incl. terminals).
        let g = fork_join(3, 1.0);
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        let sets = as_sets(&s);
        assert!(sets.contains(&vec![0, 1, 2, 3, 4]));
        // 5 singletons + whole-graph span; the 2-edge series branches have
        // single-node interiors that dedup into the singletons.
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn sp_set_is_linear_in_graph_size() {
        for seed in 0..10 {
            let g = random_sp_graph(&SpGenConfig::new(120, seed));
            let s = series_parallel_subgraphs(&g, CutPolicy::default());
            // |S| <= singletons + one per inner tree node <= n + 2|E|.
            assert!(
                s.len() <= g.node_count() + 2 * g.edge_count(),
                "|S| = {} too large",
                s.len()
            );
            // And at least the singletons are present.
            assert!(s.len() >= g.node_count());
        }
    }

    #[test]
    fn subgraphs_exclude_virtual_terminals() {
        // Multi-sink graph: normalization adds a virtual sink that must
        // not leak into any subgraph.
        let mut b = spmap_graph::GraphBuilder::new();
        b.add_default_tasks(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        for sg in s.iter() {
            for &v in sg {
                assert!(v.index() < 3, "virtual node {v} leaked");
            }
        }
    }

    #[test]
    fn conflicting_edges_force_cuts_but_sets_stay_linear() {
        // Paper §IV-C: extra edges make the graph non-SP; the forest
        // fragments (more cuts), yet the subgraph set stays linear in the
        // graph size.  (With the SmallestSubtree policy the cuts remove
        // single conflicting edges, so large operations survive — the
        // "arguably better decomposition" of the paper's Fig. 2 remark.)
        use crate::forest::decompose_forest;
        use spmap_graph::ops::normalize_terminals;
        let cfg = SpGenConfig::new(40, 4);
        let cuts_for = |k: usize| {
            let g = almost_sp_graph(&cfg, k);
            let norm = normalize_terminals(&g);
            decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default()).cuts
        };
        assert_eq!(cuts_for(0), 0, "pure SP graph needs no cuts");
        let c50 = cuts_for(50);
        let c200 = cuts_for(200);
        assert!(c50 >= 10, "50 extra edges force many cuts (got {c50})");
        assert!(c200 > c50, "denser graphs need more cuts ({c200} vs {c50})");
        // Subgraph set stays linear.
        let g = almost_sp_graph(&cfg, 200);
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        assert!(s.len() <= g.node_count() + 2 * g.edge_count());
    }

    #[test]
    fn edgeless_graph_yields_singletons() {
        let mut b = spmap_graph::GraphBuilder::new();
        b.add_default_tasks(3);
        let g = b.build().unwrap();
        let s = series_parallel_subgraphs(&g, CutPolicy::default());
        assert_eq!(s.len(), 3);
    }

    use spmap_graph::NodeId;
}

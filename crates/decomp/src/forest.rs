//! **Algorithm 1 of the paper**: growing a forest of series-parallel
//! decomposition trees over an arbitrary two-terminal DAG.
//!
//! The algorithm grows a *core* decomposition tree from the global source
//! by alternating series growth (`grow_series`) and parallel growth
//! (`grow_parallel`).  Parallel growth maintains a *wavefront* of active
//! subtrees rooted at the branch node; subtrees with a common sink merge
//! into parallel operations.  When the wavefront can neither merge nor
//! grow, the input graph is not series-parallel at this point and one
//! active subtree is **cut** from the DAG: it becomes its own tree in the
//! forest and the expected input count of its sink is reduced (paper
//! Fig. 2).  Which subtree to cut is left open in the paper ("choose any");
//! [`CutPolicy`] makes the choice configurable — cutting the smallest
//! subtree reproduces the "arguably better" forest of the paper's Fig. 2
//! discussion, cutting the largest reproduces the figure itself.
//!
//! With the per-tree `outsize` bookkeeping, every edge is visited a
//! constant number of times and every wavefront event (merge, growth step,
//! cut) consumes at least one edge or removes one tree, so the algorithm
//! runs in linear time in the number of edges (paper §III-C).
//!
//! The growth condition is checked against a *mutable* indegree array:
//! cutting a subtree `T ≙ [u1, u2]` decrements `indegree(u2)` by
//! `outsize(T)`, exactly as in the paper's line 40.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spmap_graph::{ops, NodeId, TaskGraph};

use crate::sptree::{SpForest, SpTreeId};

/// How to choose the subtree to cut from a stuck wavefront.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CutPolicy {
    /// Cut the active subtree with the fewest edges (default; keeps large
    /// decompositions intact — the paper's "arguably better" choice).
    #[default]
    SmallestSubtree,
    /// Cut the active subtree with the most edges (reproduces the paper's
    /// Fig. 2 forest).
    LargestSubtree,
    /// Cut the first active subtree in wavefront order.
    FirstActive,
    /// Cut a uniformly random active subtree (the paper's literal
    /// "randomly choose"), seeded for reproducibility.
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Output of [`decompose_forest`].
#[derive(Clone, Debug)]
pub struct ForestResult {
    /// The decomposition forest; cut trees first, the core tree last.
    pub forest: SpForest,
    /// The core tree grown from the global source.
    pub core: SpTreeId,
    /// Number of subtrees that had to be cut (0 iff the graph is
    /// series-parallel).
    pub cuts: usize,
    /// Global source used.
    pub source: NodeId,
    /// Global sink used.
    pub sink: NodeId,
}

impl ForestResult {
    /// `true` iff the graph decomposed into a single tree.
    pub fn is_series_parallel(&self) -> bool {
        self.cuts == 0
    }
}

/// Run Algorithm 1 on a two-terminal DAG.  `source`/`sink` must be the
/// unique source and sink of `g` (normalize first via
/// [`spmap_graph::ops::normalize_terminals`] for general DAGs).
///
/// The recursion nests as deep as the series-parallel structure, so the
/// actual work runs on a dedicated thread with a large stack; the public
/// function itself is safe to call from anywhere.
pub fn decompose_forest(
    g: &TaskGraph,
    source: NodeId,
    sink: NodeId,
    policy: CutPolicy,
) -> ForestResult {
    debug_assert_eq!(ops::sources(g), vec![source], "source must be unique");
    debug_assert_eq!(ops::sinks(g), vec![sink], "sink must be unique");
    assert!(g.edge_count() > 0, "decomposition needs at least one edge");
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("sp-decompose".into())
            .stack_size(256 << 20)
            .spawn_scoped(scope, || {
                let builder = Builder {
                    g,
                    forest: SpForest::new(),
                    indeg: (0..g.node_count())
                        .map(|v| g.in_degree(NodeId(v as u32)) as u32)
                        .collect(),
                    sink,
                    policy,
                    rng: match policy {
                        CutPolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
                        _ => None,
                    },
                    cuts: 0,
                };
                builder.run(source)
            })
            .expect("spawn decomposition thread")
            .join()
            .expect("decomposition thread panicked")
    })
}

struct Builder<'g> {
    g: &'g TaskGraph,
    forest: SpForest,
    /// Mutable indegrees; cuts decrement the sink's count (paper line 40).
    indeg: Vec<u32>,
    sink: NodeId,
    policy: CutPolicy,
    rng: Option<StdRng>,
    cuts: usize,
}

impl<'g> Builder<'g> {
    fn run(mut self, source: NodeId) -> ForestResult {
        let core = self
            .grow_series(None, source)
            .expect("a two-terminal graph with edges always grows a core tree");
        debug_assert_eq!(
            self.forest.node(core).sink,
            self.sink,
            "core tree must reach the global sink"
        );
        self.forest.roots.push(core);
        ForestResult {
            core,
            cuts: self.cuts,
            source,
            sink: self.sink,
            forest: self.forest,
        }
    }

    /// GROW_SERIES (paper lines 6–17).  `t = None` encodes the paper's
    /// virtual start tree `[ε, s]` at node `start` without materializing a
    /// virtual edge; in that state the outsize is 0, which together with
    /// `indegree(start) = 0` (sources and freshly entered parallel heads)
    /// lets growth begin.
    fn grow_series(&mut self, mut t: Option<SpTreeId>, start: NodeId) -> Option<SpTreeId> {
        loop {
            let (v, outsize) = match t {
                Some(id) => {
                    let n = self.forest.node(id);
                    (n.sink, n.outsize)
                }
                None => (start, 0),
            };
            // Stop at the global end node or when v has inputs outside T.
            if v == self.sink || self.indeg[v.index()] > outsize {
                return t;
            }
            let ext = if self.g.out_degree(v) == 1 {
                let e = self.g.out_edges(v)[0];
                self.forest.leaf(e, v, self.g.edge(e).dst)
            } else {
                self.grow_parallel(v)
            };
            t = Some(match t {
                Some(id) => self.forest.series_extend(id, ext),
                None => ext,
            });
        }
    }

    /// GROW_PARALLEL (paper lines 19–42): maintain the wavefront `w` of
    /// active subtrees rooted at `v`; merge same-sink subtrees, grow all,
    /// and cut one subtree whenever no change is possible.
    fn grow_parallel(&mut self, v: NodeId) -> SpTreeId {
        let mut w: Vec<SpTreeId> = self
            .g
            .out_edges(v)
            .iter()
            .map(|&e| self.forest.leaf(e, v, self.g.edge(e).dst))
            .collect();
        debug_assert!(w.len() >= 2, "grow_parallel requires out-degree >= 2");
        loop {
            // repeat … until no change in the wavefront occurred
            loop {
                let merged = self.merge_same_sink(&mut w);
                if w.len() == 1 {
                    return w[0];
                }
                let mut grew = false;
                for slot in w.iter_mut() {
                    let old_sink = self.forest.node(*slot).sink;
                    let grown = self
                        .grow_series(Some(*slot), old_sink)
                        .expect("existing tree stays Some");
                    if self.forest.node(grown).sink != old_sink {
                        grew = true;
                    }
                    *slot = grown;
                }
                if !merged && !grew {
                    break;
                }
            }
            // Stuck: the graph is not series-parallel here.  Cut one
            // active subtree (paper lines 38–40).
            let idx = self.choose_cut(&w);
            let tc = w.remove(idx);
            let node = self.forest.node(tc);
            let (u2, outsize) = (node.sink, node.outsize);
            self.indeg[u2.index()] -= outsize;
            self.forest.roots.push(tc);
            self.cuts += 1;
        }
    }

    /// Merge every group of wavefront trees sharing a sink into a parallel
    /// operation (paper lines 26–28).  Groups are processed in ascending
    /// sink order; within a group wavefront order is preserved.  Returns
    /// whether anything merged.
    fn merge_same_sink(&mut self, w: &mut Vec<SpTreeId>) -> bool {
        use std::collections::BTreeMap;
        let mut by_sink: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, &t) in w.iter().enumerate() {
            by_sink.entry(self.forest.node(t).sink).or_default().push(i);
        }
        let mut merged = false;
        let mut remove: Vec<usize> = Vec::new();
        for (_, group) in by_sink {
            if group.len() < 2 {
                continue;
            }
            merged = true;
            let trees: Vec<SpTreeId> = group.iter().map(|&i| w[i]).collect();
            let p = self.forest.parallel(&trees);
            w[group[0]] = p;
            remove.extend(&group[1..]);
        }
        if merged {
            remove.sort_unstable();
            for &i in remove.iter().rev() {
                w.remove(i);
            }
        }
        merged
    }

    fn choose_cut(&mut self, w: &[SpTreeId]) -> usize {
        debug_assert!(w.len() >= 2);
        match self.policy {
            CutPolicy::FirstActive => 0,
            CutPolicy::SmallestSubtree => w
                .iter()
                .enumerate()
                .min_by_key(|(i, &t)| (self.forest.node(t).edge_count, *i))
                .map(|(i, _)| i)
                .unwrap(),
            CutPolicy::LargestSubtree => w
                .iter()
                .enumerate()
                .max_by_key(|(i, &t)| (self.forest.node(t).edge_count, usize::MAX - *i))
                .map(|(i, _)| i)
                .unwrap(),
            CutPolicy::Random { .. } => {
                let rng = self.rng.as_mut().expect("rng initialized for Random");
                rng.gen_range(0..w.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::is_two_terminal_sp;
    use crate::sptree::SpOp;
    use spmap_graph::gen::{
        almost_sp_graph, chain, diamond, fig1_graph, fig2_graph, fork_join, layered_random,
        random_sp_graph, LayeredConfig, SpGenConfig,
    };
    use spmap_graph::EdgeId;

    fn forest_of(g: &TaskGraph, policy: CutPolicy) -> ForestResult {
        let norm = ops::normalize_terminals(g);
        assert!(
            !norm.virtual_source && !norm.virtual_sink,
            "test fixture is 2-terminal"
        );
        decompose_forest(g, norm.source, norm.sink, policy)
    }

    #[test]
    fn chain_is_single_series() {
        let g = chain(6, 1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        assert_eq!(r.forest.roots.len(), 1);
        let root = r.forest.node(r.core);
        assert_eq!(root.op, SpOp::Series);
        assert_eq!(root.children.len(), 5);
        assert_eq!(root.edge_count, 5);
        r.forest.validate(&g);
    }

    #[test]
    fn two_node_chain_is_single_leaf() {
        let g = chain(2, 1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        assert!(matches!(r.forest.node(r.core).op, SpOp::Leaf(_)));
    }

    #[test]
    fn diamond_is_parallel_of_series() {
        let g = diamond(1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        let root = r.forest.node(r.core);
        assert_eq!(root.op, SpOp::Parallel);
        assert_eq!(root.children.len(), 2);
        for &c in &root.children {
            assert_eq!(r.forest.node(c).op, SpOp::Series);
            assert_eq!(r.forest.node(c).edge_count, 2);
        }
        r.forest.validate(&g);
    }

    #[test]
    fn fork_join_is_flat_parallel() {
        let g = fork_join(4, 1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        let root = r.forest.node(r.core);
        assert_eq!(root.op, SpOp::Parallel);
        assert_eq!(root.children.len(), 4);
        r.forest.validate(&g);
    }

    #[test]
    fn fig1_matches_paper_tree() {
        let g = fig1_graph(1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        let root = r.forest.node(r.core);
        // Root: parallel between the 0-1-(1-3)-3-5 path and the 0-4-5 path.
        assert_eq!(root.op, SpOp::Parallel);
        assert_eq!(root.children.len(), 2);
        let mut kinds: Vec<(usize, u32)> = root
            .children
            .iter()
            .map(|&c| (r.forest.node(c).children.len(), r.forest.node(c).edge_count))
            .collect();
        kinds.sort_unstable();
        // Left branch: series of 3 (0-1, P(1-3), 3-5) with 5 edges;
        // right branch: series of 2 (0-4, 4-5).
        assert_eq!(kinds, vec![(2, 2), (3, 5)]);
        // Locate the nested parallel between 1-3 and 1-2-3.
        let left = root
            .children
            .iter()
            .copied()
            .find(|&c| r.forest.node(c).edge_count == 5)
            .unwrap();
        let nested = r.forest.node(left).children[1];
        let nested_node = r.forest.node(nested);
        assert_eq!(nested_node.op, SpOp::Parallel);
        assert_eq!(
            (nested_node.source, nested_node.sink),
            (NodeId(1), NodeId(3))
        );
        r.forest.validate(&g);
    }

    #[test]
    fn fig2_smallest_cut_gives_better_forest() {
        // Cutting the smallest subtree cuts the single edge 1-4, leaving
        // the Fig. 1 decomposition tree as the core (the paper's
        // "arguably better" outcome).
        let g = fig2_graph(1.0);
        let r = forest_of(&g, CutPolicy::SmallestSubtree);
        assert_eq!(r.cuts, 1);
        assert_eq!(r.forest.roots.len(), 2);
        let cut = r.forest.node(r.forest.roots[0]);
        assert!(matches!(cut.op, SpOp::Leaf(_)));
        assert_eq!((cut.source, cut.sink), (NodeId(1), NodeId(4)));
        // Core = the Fig. 1 tree: parallel of (series 5 edges, series 2 edges).
        let core = r.forest.node(r.core);
        assert_eq!(core.op, SpOp::Parallel);
        assert_eq!(core.edge_count, 7);
        r.forest.validate(&g);
    }

    #[test]
    fn fig2_largest_cut_matches_paper_figure() {
        // Cutting the largest subtree cuts the 1-5 branch (edges 1-2, 2-3,
        // 1-3, 3-5), the forest shown in the paper's Fig. 2.
        let g = fig2_graph(1.0);
        let r = forest_of(&g, CutPolicy::LargestSubtree);
        assert_eq!(r.cuts, 1);
        let cut = r.forest.node(r.forest.roots[0]);
        assert_eq!((cut.source, cut.sink), (NodeId(1), NodeId(5)));
        assert_eq!(cut.edge_count, 4);
        // Core covers the remaining 4 edges: 0-1, 1-4, 0-4, 4-5.
        let core = r.forest.node(r.core);
        assert_eq!(core.edge_count, 4);
        assert_eq!(core.op, SpOp::Series);
        r.forest.validate(&g);
    }

    #[test]
    fn random_sp_graphs_decompose_to_single_tree() {
        for seed in 0..25 {
            for nodes in [3, 8, 30, 100, 250] {
                let g = random_sp_graph(&SpGenConfig::new(nodes, seed));
                let r = forest_of(&g, CutPolicy::default());
                assert!(
                    r.is_series_parallel(),
                    "SP graph needed {} cuts (nodes={nodes}, seed={seed})",
                    r.cuts
                );
                assert_eq!(r.forest.node(r.core).edge_count as usize, g.edge_count());
                r.forest.validate(&g);
            }
        }
    }

    #[test]
    fn forest_partitions_all_edges() {
        for seed in 0..10 {
            let g = almost_sp_graph(&SpGenConfig::new(60, seed), 25);
            let norm = ops::normalize_terminals(&g);
            let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
            // Edge partition: every edge of the (normalized) graph appears
            // in exactly one tree — validate() checks uniqueness; count
            // checks coverage.
            let total: u32 = r
                .forest
                .roots
                .iter()
                .map(|&t| r.forest.node(t).edge_count)
                .sum();
            assert_eq!(total as usize, norm.graph.edge_count());
            r.forest.validate(&norm.graph);
        }
    }

    #[test]
    fn forest_agrees_with_reduction_oracle() {
        // Single tree <=> the reduction oracle accepts.
        let mut checked_sp = 0;
        let mut checked_non_sp = 0;
        for seed in 0..20 {
            let sp = random_sp_graph(&SpGenConfig::new(40, seed));
            let r = forest_of(&sp, CutPolicy::default());
            assert_eq!(r.is_series_parallel(), is_two_terminal_sp(&sp));
            checked_sp += 1;

            let almost = almost_sp_graph(&SpGenConfig::new(40, seed), 6);
            let norm = ops::normalize_terminals(&almost);
            let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
            assert_eq!(
                r.is_series_parallel(),
                is_two_terminal_sp(&norm.graph),
                "seed {seed}"
            );
            if !r.is_series_parallel() {
                checked_non_sp += 1;
            }
        }
        assert!(
            checked_sp > 0 && checked_non_sp > 0,
            "both classes exercised"
        );
    }

    #[test]
    fn layered_random_decomposes_with_cuts() {
        let g = layered_random(&LayeredConfig {
            layers: 8,
            width: 5,
            density: 0.4,
            seed: 5,
            edge_bytes: 1.0,
        });
        let norm = ops::normalize_terminals(&g);
        let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        assert!(r.cuts > 0, "dense layered graphs are not SP");
        let total: u32 = r
            .forest
            .roots
            .iter()
            .map(|&t| r.forest.node(t).edge_count)
            .sum();
        assert_eq!(total as usize, norm.graph.edge_count());
        r.forest.validate(&norm.graph);
    }

    #[test]
    fn cut_policies_are_deterministic() {
        let g = almost_sp_graph(&SpGenConfig::new(50, 12), 15);
        let norm = ops::normalize_terminals(&g);
        for policy in [
            CutPolicy::SmallestSubtree,
            CutPolicy::LargestSubtree,
            CutPolicy::FirstActive,
            CutPolicy::Random { seed: 7 },
        ] {
            let a = decompose_forest(&norm.graph, norm.source, norm.sink, policy);
            let b = decompose_forest(&norm.graph, norm.source, norm.sink, policy);
            assert_eq!(a.cuts, b.cuts, "{policy:?}");
            assert_eq!(a.forest.roots.len(), b.forest.roots.len());
            let sig = |r: &ForestResult| -> Vec<Vec<EdgeId>> {
                r.forest
                    .roots
                    .iter()
                    .map(|&t| r.forest.collect_edges(t))
                    .collect()
            };
            assert_eq!(sig(&a), sig(&b));
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // Long chains are iterative (series loop), and deep nesting runs on
        // the dedicated big-stack thread; 20k nodes must be fine.
        let g = chain(20_000, 1.0);
        let r = forest_of(&g, CutPolicy::default());
        assert!(r.is_series_parallel());
        assert_eq!(r.forest.node(r.core).edge_count, 19_999);
    }

    #[test]
    fn deeply_nested_sp_graph_decomposes() {
        // Alternating series/parallel nesting: worst case for recursion
        // depth.  Build a graph nested 2000 levels deep: at each level,
        // wrap the previous two-terminal graph with a parallel bypass edge
        // and a series head node.
        let mut b = spmap_graph::GraphBuilder::new();
        let mut src = b.add_task(spmap_graph::Task::named("s"));
        let sink = b.add_task(spmap_graph::Task::named("t"));
        b.add_edge(src, sink, 1.0).unwrap();
        for _ in 0..2000 {
            let new_src = b.add_task(spmap_graph::Task::default());
            b.add_edge(new_src, src, 1.0).unwrap(); // series head
            b.add_edge(new_src, sink, 1.0).unwrap(); // parallel bypass
            src = new_src;
        }
        let g = b.build().unwrap();
        let r = decompose_forest(&g, src, sink, CutPolicy::default());
        assert!(r.is_series_parallel());
        r.forest.validate(&g);
    }
}

//! Arena-allocated series-parallel decomposition trees.
//!
//! A decomposition tree node is a series operation, a parallel operation,
//! or a leaf wrapping one original graph edge (paper Fig. 1).  Every tree
//! node represents a subgraph with a distinct `source` and `sink`; the
//! `outsize` (number of tree edges ending in the sink) and `edge_count`
//! fields are the bookkeeping Algorithm 1 needs and are maintained
//! incrementally.
//!
//! Series composition is kept *flat* (a series node never has a series
//! child) and likewise for parallel nodes, so trees match the canonical
//! drawings in the paper.

use spmap_graph::{EdgeId, NodeId, TaskGraph};

/// Index of a tree node inside an [`SpForest`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpTreeId(pub u32);

impl SpTreeId {
    /// Position in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operation a tree node represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpOp {
    /// Sequential composition of the children (sink of child *i* = source
    /// of child *i + 1*).
    Series,
    /// Parallel composition of the children (all share source and sink).
    Parallel,
    /// A single original graph edge.
    Leaf(EdgeId),
}

/// One node of a decomposition tree.
#[derive(Clone, Debug)]
pub struct SpNode {
    /// Operation kind.
    pub op: SpOp,
    /// Children (empty for leaves).
    pub children: Vec<SpTreeId>,
    /// Start node of the represented subgraph.
    pub source: NodeId,
    /// End node of the represented subgraph.
    pub sink: NodeId,
    /// Number of represented edges whose endpoint is `sink`.
    pub outsize: u32,
    /// Total number of represented (leaf) edges.
    pub edge_count: u32,
}

/// An arena of decomposition-tree nodes plus the forest's root list.
#[derive(Clone, Debug, Default)]
pub struct SpForest {
    nodes: Vec<SpNode>,
    /// Roots in creation order; for Algorithm 1 the *core* tree (grown
    /// from the global source) is pushed last.
    pub roots: Vec<SpTreeId>,
}

impl SpForest {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of arena nodes (including orphaned intermediates).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a tree node.
    #[inline]
    pub fn node(&self, t: SpTreeId) -> &SpNode {
        &self.nodes[t.index()]
    }

    /// Create a leaf for graph edge `e = (u, v)`.
    pub fn leaf(&mut self, e: EdgeId, u: NodeId, v: NodeId) -> SpTreeId {
        self.push(SpNode {
            op: SpOp::Leaf(e),
            children: Vec::new(),
            source: u,
            sink: v,
            outsize: 1,
            edge_count: 1,
        })
    }

    /// Sequential composition `t ; x` (sink of `t` must equal source of
    /// `x`).  If `t` is already a series node it is extended in place and
    /// returned; series children of `x` are spliced in to keep the tree
    /// flat.
    pub fn series_extend(&mut self, t: SpTreeId, x: SpTreeId) -> SpTreeId {
        assert_eq!(
            self.node(t).sink,
            self.node(x).source,
            "series composition requires sink(t) == source(x)"
        );
        let x_node = self.node(x);
        let (x_children, x_sink, x_outsize, x_edges) = (
            if x_node.op == SpOp::Series {
                x_node.children.clone()
            } else {
                vec![x]
            },
            x_node.sink,
            x_node.outsize,
            x_node.edge_count,
        );
        if self.node(t).op == SpOp::Series {
            let node = &mut self.nodes[t.index()];
            node.children.extend(x_children);
            node.sink = x_sink;
            node.outsize = x_outsize;
            node.edge_count += x_edges;
            t
        } else {
            let t_node = self.node(t);
            let (source, t_edges) = (t_node.source, t_node.edge_count);
            let mut children = vec![t];
            children.extend(x_children);
            self.push(SpNode {
                op: SpOp::Series,
                children,
                source,
                sink: x_sink,
                outsize: x_outsize,
                edge_count: t_edges + x_edges,
            })
        }
    }

    /// Parallel composition of two or more trees sharing source and sink.
    /// Parallel children are spliced in to keep the tree flat.
    pub fn parallel(&mut self, trees: &[SpTreeId]) -> SpTreeId {
        assert!(trees.len() >= 2, "parallel composition needs >= 2 trees");
        let source = self.node(trees[0]).source;
        let sink = self.node(trees[0]).sink;
        let mut children = Vec::with_capacity(trees.len());
        let mut outsize = 0;
        let mut edge_count = 0;
        for &t in trees {
            let node = self.node(t);
            assert_eq!(node.source, source, "parallel children share the source");
            assert_eq!(node.sink, sink, "parallel children share the sink");
            outsize += node.outsize;
            edge_count += node.edge_count;
            if node.op == SpOp::Parallel {
                children.extend(node.children.iter().copied());
            } else {
                children.push(t);
            }
        }
        self.push(SpNode {
            op: SpOp::Parallel,
            children,
            source,
            sink,
            outsize,
            edge_count,
        })
    }

    fn push(&mut self, node: SpNode) -> SpTreeId {
        let id = SpTreeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// All graph edges represented by the subtree rooted at `t`, in leaf
    /// order.
    pub fn collect_edges(&self, t: SpTreeId) -> Vec<EdgeId> {
        let mut out = Vec::with_capacity(self.node(t).edge_count as usize);
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if let SpOp::Leaf(e) = node.op {
                out.push(e);
            }
            stack.extend(node.children.iter().rev());
        }
        out
    }

    /// All graph nodes touched by the subtree rooted at `t` (endpoints of
    /// its leaf edges), sorted and deduplicated.
    pub fn collect_nodes(&self, t: SpTreeId, graph: &TaskGraph) -> Vec<NodeId> {
        let mut out = Vec::new();
        for e in self.collect_edges(t) {
            let edge = graph.edge(e);
            out.push(edge.src);
            out.push(edge.dst);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterate over every tree node reachable from the forest's roots
    /// (pre-order per root).
    pub fn iter_tree_nodes(&self) -> impl Iterator<Item = SpTreeId> + '_ {
        let mut order = Vec::new();
        let mut stack: Vec<SpTreeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            order.push(id);
            stack.extend(self.node(id).children.iter().rev());
        }
        order.into_iter()
    }

    /// Structural validation against the originating graph: every leaf
    /// edge exists with matching endpoints, series children chain, parallel
    /// children share endpoints, bookkeeping fields are consistent, and no
    /// edge appears in two trees.  Panics with a description on violation;
    /// intended for tests and debug assertions.  Iterative, so arbitrarily
    /// deep trees validate on any stack.
    pub fn validate(&self, graph: &TaskGraph) {
        let mut edge_seen = vec![false; graph.edge_count()];
        let mut stack: Vec<SpTreeId> = self.roots.clone();
        while let Some(t) = stack.pop() {
            let node = self.node(t);
            match node.op {
                SpOp::Leaf(e) => {
                    let edge = graph.edge(e);
                    assert_eq!(edge.src, node.source, "leaf source mismatch");
                    assert_eq!(edge.dst, node.sink, "leaf sink mismatch");
                    assert_eq!(node.outsize, 1);
                    assert_eq!(node.edge_count, 1);
                    assert!(!edge_seen[e.index()], "edge {e} in two trees");
                    edge_seen[e.index()] = true;
                }
                SpOp::Series => {
                    assert!(node.children.len() >= 2, "series with < 2 children");
                    let mut cur = node.source;
                    let mut edges = 0;
                    for &c in &node.children {
                        let cn = self.node(c);
                        assert_ne!(cn.op, SpOp::Series, "nested series not flattened");
                        assert_eq!(cn.source, cur, "series chain broken");
                        cur = cn.sink;
                        edges += cn.edge_count;
                    }
                    assert_eq!(cur, node.sink, "series sink mismatch");
                    assert_eq!(node.edge_count, edges);
                    let last = *node.children.last().unwrap();
                    assert_eq!(node.outsize, self.node(last).outsize);
                    stack.extend(&node.children);
                }
                SpOp::Parallel => {
                    assert!(node.children.len() >= 2, "parallel with < 2 children");
                    let mut edges = 0;
                    let mut outsize = 0;
                    for &c in &node.children {
                        let cn = self.node(c);
                        assert_ne!(cn.op, SpOp::Parallel, "nested parallel not flattened");
                        assert_eq!(cn.source, node.source, "parallel source mismatch");
                        assert_eq!(cn.sink, node.sink, "parallel sink mismatch");
                        edges += cn.edge_count;
                        outsize += cn.outsize;
                    }
                    assert_eq!(node.edge_count, edges);
                    assert_eq!(node.outsize, outsize);
                    stack.extend(&node.children);
                }
            }
        }
    }

    /// Render the subtree rooted at `t` as an indented text tree, in the
    /// style of the paper's Fig. 1 (`S`/`P` inner nodes, `u - v` leaves).
    pub fn format_tree(&self, t: SpTreeId, graph: &TaskGraph) -> String {
        let mut s = String::new();
        self.format_rec(t, graph, 0, &mut s);
        s
    }

    fn format_rec(&self, t: SpTreeId, graph: &TaskGraph, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let node = self.node(t);
        let indent = "  ".repeat(depth);
        match node.op {
            SpOp::Leaf(e) => {
                let edge = graph.edge(e);
                writeln!(out, "{indent}{} - {}", edge.src.0, edge.dst.0).unwrap();
            }
            SpOp::Series => {
                writeln!(out, "{indent}S [{} - {}]", node.source.0, node.sink.0).unwrap();
                for &c in &node.children {
                    self.format_rec(c, graph, depth + 1, out);
                }
            }
            SpOp::Parallel => {
                writeln!(out, "{indent}P [{} - {}]", node.source.0, node.sink.0).unwrap();
                for &c in &node.children {
                    self.format_rec(c, graph, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, diamond};

    #[test]
    fn leaf_fields() {
        let g = chain(2, 1.0);
        let mut f = SpForest::new();
        let l = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let n = f.node(l);
        assert_eq!(n.op, SpOp::Leaf(EdgeId(0)));
        assert_eq!((n.source, n.sink), (NodeId(0), NodeId(1)));
        assert_eq!((n.outsize, n.edge_count), (1, 1));
        f.roots.push(l);
        f.validate(&g);
    }

    #[test]
    fn series_extension_flattens() {
        let g = chain(4, 1.0);
        let mut f = SpForest::new();
        let l0 = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let l1 = f.leaf(EdgeId(1), NodeId(1), NodeId(2));
        let l2 = f.leaf(EdgeId(2), NodeId(2), NodeId(3));
        let s = f.series_extend(l0, l1);
        let s = f.series_extend(s, l2);
        let n = f.node(s);
        assert_eq!(n.op, SpOp::Series);
        assert_eq!(n.children.len(), 3, "flat series");
        assert_eq!((n.source, n.sink), (NodeId(0), NodeId(3)));
        assert_eq!(n.edge_count, 3);
        assert_eq!(n.outsize, 1);
        f.roots.push(s);
        f.validate(&g);
    }

    #[test]
    fn series_splices_series_argument() {
        let g = chain(5, 1.0);
        let mut f = SpForest::new();
        let a = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let b = f.leaf(EdgeId(1), NodeId(1), NodeId(2));
        let c = f.leaf(EdgeId(2), NodeId(2), NodeId(3));
        let d = f.leaf(EdgeId(3), NodeId(3), NodeId(4));
        let s1 = f.series_extend(a, b); // 0..2
        let s2 = f.series_extend(c, d); // 2..4
        let s = f.series_extend(s1, s2);
        assert_eq!(f.node(s).children.len(), 4);
        f.roots.push(s);
        f.validate(&g);
    }

    #[test]
    fn parallel_composition() {
        let g = diamond(1.0); // edges: 0-1, 0-2, 1-3, 2-3
        let mut f = SpForest::new();
        let a = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let b = f.leaf(EdgeId(2), NodeId(1), NodeId(3));
        let left = f.series_extend(a, b);
        let c = f.leaf(EdgeId(1), NodeId(0), NodeId(2));
        let d = f.leaf(EdgeId(3), NodeId(2), NodeId(3));
        let right = f.series_extend(c, d);
        let p = f.parallel(&[left, right]);
        let n = f.node(p);
        assert_eq!(n.op, SpOp::Parallel);
        assert_eq!((n.source, n.sink), (NodeId(0), NodeId(3)));
        assert_eq!(n.outsize, 2);
        assert_eq!(n.edge_count, 4);
        f.roots.push(p);
        f.validate(&g);
        assert_eq!(
            f.collect_nodes(p, &g),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn parallel_flattens_parallel_children() {
        // Triple edge shape 0 -> 1 via three disjoint 2-chains is overkill;
        // use two leaves merged, then merge with a third tree.
        let mut b = spmap_graph::GraphBuilder::new();
        b.add_default_tasks(2);
        let e0 = b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e1 = b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let e2 = b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let mut f = SpForest::new();
        let l0 = f.leaf(e0, NodeId(0), NodeId(1));
        let l1 = f.leaf(e1, NodeId(0), NodeId(1));
        let p1 = f.parallel(&[l0, l1]);
        let l2 = f.leaf(e2, NodeId(0), NodeId(1));
        let p2 = f.parallel(&[p1, l2]);
        assert_eq!(f.node(p2).children.len(), 3, "flat parallel");
        assert_eq!(f.node(p2).outsize, 3);
        f.roots.push(p2);
        f.validate(&g);
    }

    #[test]
    #[should_panic(expected = "series composition requires")]
    fn series_rejects_disconnected() {
        let mut f = SpForest::new();
        let a = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let b = f.leaf(EdgeId(1), NodeId(2), NodeId(3));
        f.series_extend(a, b);
    }

    #[test]
    fn collect_edges_order() {
        let g = chain(3, 1.0);
        let mut f = SpForest::new();
        let a = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let b = f.leaf(EdgeId(1), NodeId(1), NodeId(2));
        let s = f.series_extend(a, b);
        assert_eq!(f.collect_edges(s), vec![EdgeId(0), EdgeId(1)]);
        let _ = g;
    }

    #[test]
    fn format_tree_smoke() {
        let g = diamond(1.0);
        let mut f = SpForest::new();
        let a = f.leaf(EdgeId(0), NodeId(0), NodeId(1));
        let b = f.leaf(EdgeId(2), NodeId(1), NodeId(3));
        let s = f.series_extend(a, b);
        let txt = f.format_tree(s, &g);
        assert!(txt.contains("S [0 - 3]"));
        assert!(txt.contains("0 - 1"));
        assert!(txt.contains("1 - 3"));
    }
}

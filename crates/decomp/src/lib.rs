//! # spmap-decomp — series-parallel decomposition machinery
//!
//! The paper's algorithmic core:
//!
//! * [`sptree`] — arena-allocated series-parallel decomposition trees and
//!   forests ([`SpForest`]), with structural validation and pretty
//!   printing (paper Fig. 1),
//! * [`reduce`] — the classic reduction-based recognizer for two-terminal
//!   series-parallel DAGs (series and parallel reductions down to a single
//!   edge); used as an independent oracle to cross-validate the forest
//!   algorithm,
//! * [`forest`] — **Algorithm 1 of the paper**: growing a forest of
//!   series-parallel decomposition trees over an *arbitrary* DAG, cutting
//!   conflicting subtrees from stuck wavefronts (paper Fig. 2), with a
//!   configurable [`CutPolicy`],
//! * [`subgraphs`] — the candidate subgraph sets driving decomposition
//!   mapping (§III-B/C): all single nodes, plus the interiors of series
//!   operations and the spans of parallel operations.

pub mod forest;
pub mod reduce;
pub mod sptree;
pub mod subgraphs;

pub use forest::{decompose_forest, CutPolicy, ForestResult};
pub use reduce::is_two_terminal_sp;
pub use sptree::{SpForest, SpNode, SpOp, SpTreeId};
pub use subgraphs::{series_parallel_subgraphs, single_node_subgraphs, SubgraphSet};

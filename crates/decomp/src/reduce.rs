//! Reduction-based recognition of two-terminal series-parallel DAGs.
//!
//! The classic characterization (Valdes/Tarjan/Lawler; paper ref. 21):
//! a two-terminal DAG is series-parallel iff it can be reduced to a single
//! edge by repeatedly applying
//!
//! * **series reductions** — replace a path `u → v → w` through an interior
//!   node `v` with `in(v) = out(v) = 1` by the edge `u → w`, and
//! * **parallel reductions** — merge duplicate edges `u → w`.
//!
//! This module is an *independent oracle*: `spmap-decomp`'s forest
//! algorithm (Alg. 1 of the paper) must report a single decomposition tree
//! exactly when this recognizer accepts, which the test suites of both
//! modules cross-check on thousands of random graphs.

use std::collections::HashMap;

use spmap_graph::{ops, NodeId, TaskGraph};

#[derive(Clone, Copy)]
struct E {
    src: u32,
    dst: u32,
    alive: bool,
}

/// `true` iff `g` is a two-terminal series-parallel DAG (exactly one
/// source, one sink, and reducible to a single edge).  Graphs with
/// multiple sources or sinks are rejected; normalize first if needed.
pub fn is_two_terminal_sp(g: &TaskGraph) -> bool {
    let srcs = ops::sources(g);
    let snks = ops::sinks(g);
    if srcs.len() != 1 || snks.len() != 1 {
        return false;
    }
    let (s, t) = (srcs[0], snks[0]);
    if g.edge_count() == 0 {
        return false;
    }

    let n = g.node_count();
    let mut edges: Vec<E> = Vec::with_capacity(g.edge_count() * 2);
    let mut out_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut outdeg = vec![0u32; n];
    let mut indeg = vec![0u32; n];
    let mut pair: HashMap<(u32, u32), usize> = HashMap::new();
    let mut live = 0usize;

    // Insert an edge, performing an immediate parallel reduction if the
    // ordered pair already exists.
    let add_edge = |u: u32,
                    v: u32,
                    edges: &mut Vec<E>,
                    out_adj: &mut [Vec<usize>],
                    in_adj: &mut [Vec<usize>],
                    outdeg: &mut [u32],
                    indeg: &mut [u32],
                    pair: &mut HashMap<(u32, u32), usize>,
                    live: &mut usize| {
        if let Some(&i) = pair.get(&(u, v)) {
            if edges[i].alive {
                return; // parallel reduction: merged away
            }
        }
        let idx = edges.len();
        edges.push(E {
            src: u,
            dst: v,
            alive: true,
        });
        pair.insert((u, v), idx);
        out_adj[u as usize].push(idx);
        in_adj[v as usize].push(idx);
        outdeg[u as usize] += 1;
        indeg[v as usize] += 1;
        *live += 1;
    };

    for e in g.edge_ids() {
        let edge = g.edge(e);
        add_edge(
            edge.src.0,
            edge.dst.0,
            &mut edges,
            &mut out_adj,
            &mut in_adj,
            &mut outdeg,
            &mut indeg,
            &mut pair,
            &mut live,
        );
    }

    // Worklist of nodes to try a series reduction on.
    let mut work: Vec<u32> = (0..n as u32).filter(|&v| v != s.0 && v != t.0).collect();
    while let Some(v) = work.pop() {
        let vi = v as usize;
        if indeg[vi] != 1 || outdeg[vi] != 1 {
            continue;
        }
        // Locate the unique live in/out edges (compact stale entries).
        in_adj[vi].retain(|&i| edges[i].alive);
        out_adj[vi].retain(|&i| edges[i].alive);
        debug_assert_eq!(in_adj[vi].len(), 1);
        debug_assert_eq!(out_adj[vi].len(), 1);
        let e_in = in_adj[vi][0];
        let e_out = out_adj[vi][0];
        let u = edges[e_in].src;
        let w = edges[e_out].dst;
        debug_assert_ne!(u, w, "DAG reductions cannot create self loops");
        // Kill both edges.
        for (idx, endpoint_out, endpoint_in) in [(e_in, u, v), (e_out, v, w)] {
            edges[idx].alive = false;
            if pair.get(&(edges[idx].src, edges[idx].dst)) == Some(&idx) {
                pair.remove(&(edges[idx].src, edges[idx].dst));
            }
            outdeg[endpoint_out as usize] -= 1;
            indeg[endpoint_in as usize] -= 1;
            live -= 1;
        }
        // Add the bypass edge (u, w) — with parallel merge on collision.
        let before = live;
        add_edge(
            u,
            w,
            &mut edges,
            &mut out_adj,
            &mut in_adj,
            &mut outdeg,
            &mut indeg,
            &mut pair,
            &mut live,
        );
        let _merged = live == before;
        // Degrees at u and w changed (or a parallel pair vanished): retry.
        if u != s.0 && u != t.0 {
            work.push(u);
        }
        if w != s.0 && w != t.0 {
            work.push(w);
        }
    }

    live == 1
        && edges
            .iter()
            .any(|e| e.alive && e.src == s.0 && e.dst == t.0)
}

/// Convenience: normalize terminals first, then test (accepts multi-source
/// / multi-sink graphs whose normalized form is series-parallel).
pub fn is_sp_after_normalization(g: &TaskGraph) -> bool {
    let norm = ops::normalize_terminals(g);
    is_two_terminal_sp(&norm.graph)
}

#[allow(dead_code)]
fn _id_use(_: NodeId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{
        chain, diamond, fig1_graph, fig2_graph, fork_join, layered_random, random_sp_graph,
        LayeredConfig, SpGenConfig,
    };
    use spmap_graph::{GraphBuilder, NodeId};

    #[test]
    fn accepts_chain_and_diamond() {
        assert!(is_two_terminal_sp(&chain(2, 1.0)));
        assert!(is_two_terminal_sp(&chain(10, 1.0)));
        assert!(is_two_terminal_sp(&diamond(1.0)));
        assert!(is_two_terminal_sp(&fork_join(5, 1.0)));
    }

    #[test]
    fn accepts_fig1_rejects_fig2() {
        assert!(is_two_terminal_sp(&fig1_graph(1.0)));
        assert!(
            !is_two_terminal_sp(&fig2_graph(1.0)),
            "fig2 contains the conflicting edge 1-4"
        );
    }

    #[test]
    fn rejects_n_graph() {
        // The canonical forbidden structure: 0->2, 0->3, 1->3 plus a
        // common source/sink wrapper is non-SP.  Build the classic
        // "N" inside a two-terminal graph.
        let mut b = GraphBuilder::new();
        b.add_default_tasks(4);
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 1 -> 2 (the N edge)
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)] {
            b.add_edge(NodeId(u), NodeId(v), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        assert!(!is_two_terminal_sp(&g));
    }

    #[test]
    fn accepts_all_generated_sp_graphs() {
        for seed in 0..30 {
            for nodes in [2, 3, 5, 10, 40, 120] {
                let g = random_sp_graph(&SpGenConfig::new(nodes, seed));
                assert!(
                    is_two_terminal_sp(&g),
                    "generated SP graph rejected (nodes={nodes}, seed={seed})"
                );
            }
        }
    }

    #[test]
    fn rejects_multi_terminal_graphs() {
        let mut b = GraphBuilder::new();
        b.add_default_tasks(3);
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(!is_two_terminal_sp(&g), "two sources");
        assert!(
            is_sp_after_normalization(&g),
            "but SP once a virtual source is added"
        );
    }

    #[test]
    fn layered_graphs_mostly_rejected() {
        // Dense layered graphs are essentially never series-parallel.
        let g = layered_random(&LayeredConfig {
            layers: 5,
            width: 5,
            density: 0.5,
            seed: 3,
            edge_bytes: 1.0,
        });
        assert!(!is_sp_after_normalization(&g));
    }

    #[test]
    fn multigraph_parallel_edges_reduce() {
        let mut b = GraphBuilder::new();
        b.add_default_tasks(2);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(is_two_terminal_sp(&g));
    }
}

//! `spmap-lint`: a dependency-free static analyzer for this workspace's
//! determinism and unsafe-code discipline.
//!
//! Every exactness claim in this reproduction rests on bit-identity
//! gates (`tests/equivalence.rs`): results and decision statistics must
//! be invariant across `SPMAP_THREADS` × `SPMAP_POOL` × checkpoint
//! layouts.  Those gates can only *sample* the invariants they depend
//! on; this tool enforces the underlying source discipline on every
//! line of the workspace, in CI (see `docs/DETERMINISM.md`):
//!
//! * [`unsafe-needs-safety-comment`] — every `unsafe` token must be
//!   preceded by a `// SAFETY:` comment (or a `# Safety` doc section)
//!   stating the invariant that makes it sound.
//! * [`no-unordered-iteration`] — iterating a `HashMap`/`HashSet`
//!   (`iter`, `keys`, `values`, `drain`, `retain`, `for … in`) is
//!   forbidden in non-test code: iteration order is randomized per
//!   instance, so any order-dependent use silently breaks determinism
//!   in a way the equivalence matrix can only catch probabilistically.
//! * [`no-env-outside-config`] — `std::env::var`/`var_os` is confined
//!   to the sanctioned parse helpers (`spmap_par::num_threads` /
//!   `backend` / `num_shards` and friends in `crates/par/src/lib.rs`),
//!   so ambient configuration can never leak into a decision path
//!   unaudited.
//! * [`no-wallclock-in-decisions`] — `Instant`/`SystemTime` are
//!   confined to the bench harness, the criterion shim and examples;
//!   crates whose outputs are Eq-compared must not read the clock.
//! * [`catch-unwind-needs-containment-comment`] — every production
//!   `catch_unwind` must be preceded by a `// CONTAINMENT:` comment
//!   naming the recovery policy: what state the caught unwind leaves
//!   behind and who restores it (docs/ROBUSTNESS.md).  Test code is
//!   exempt — tests use `catch_unwind` to *observe* panics.
//!
//! Exceptions are written down where they live: an inline pragma
//!
//! ```text
//! // lint:allow(<rule>): <reason>
//! ```
//!
//! suppresses one rule either on its own line (trailing comment) or on
//! the next code line (whole-line comment).  The reason is mandatory —
//! a pragma without one is itself a violation — and `git grep
//! lint:allow` enumerates every exception in the workspace.
//!
//! The analyzer is a hand-rolled lexer (no `syn` — the workspace builds
//! offline): it tokenizes Rust source precisely enough to ignore
//! comments, strings and char/lifetime ambiguity, tracks `#[cfg(test)]`
//! item spans, and pattern-matches token runs.  It is deliberately
//! conservative: lexical analysis cannot resolve types, so the
//! unordered-iteration rule tracks identifiers *bound* to hash types in
//! the same file and flags iteration through them — false negatives
//! are possible across function boundaries, false positives are
//! pragma-suppressed with a written reason.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The enforced rules, in reporting order.
pub const RULE_NAMES: [&str; 5] = [
    "unsafe-needs-safety-comment",
    "no-unordered-iteration",
    "no-env-outside-config",
    "no-wallclock-in-decisions",
    "catch-unwind-needs-containment-comment",
];

/// One finding: `file:line: rule: message`, the grep-able CI currency.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based source line.
    pub line: usize,
    /// Rule name (one of [`RULE_NAMES`], or `bad-pragma` for a
    /// malformed/unknown `lint:allow`).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// One lexical token with its 1-based source line.  Punctuation is one
/// token per character except `::`, which the rules match as a unit.
struct Tok {
    text: String,
    line: usize,
}

/// A lexed file: the token stream plus per-line comment text (for
/// SAFETY markers and pragmas) and a per-line "has code" flag.
struct FileScan {
    toks: Vec<Tok>,
    /// Comment text per line, 1-indexed (index 0 unused).  Line and
    /// block comments both contribute; multi-line block comments
    /// contribute to every line they touch.
    comments: Vec<String>,
    /// `true` where at least one token starts on the line, 1-indexed.
    code_on_line: Vec<bool>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `source`, stripping comments (recorded per line), string
/// and char literals, and resolving the `'` lifetime-vs-char-literal
/// ambiguity.  Good enough for token-run matching; not a full lexer.
fn scan(source: &str) -> FileScan {
    let chars: Vec<char> = source.chars().collect();
    let nlines = source.lines().count() + 2;
    let mut s = FileScan {
        toks: Vec::new(),
        comments: vec![String::new(); nlines],
        code_on_line: vec![false; nlines],
    };
    let mut i = 0usize;
    let mut line = 1usize;
    let push = |s: &mut FileScan, text: String, line: usize| {
        s.code_on_line[line] = true;
        s.toks.push(Tok { text, line });
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                s.comments[line].push_str(&text);
                s.comments[line].push(' ');
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment; text recorded line by line.
                let mut depth = 1usize;
                i += 2;
                let mut seg = String::new();
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            s.comments[line].push_str(&seg);
                            s.comments[line].push(' ');
                            seg.clear();
                            line += 1;
                        } else {
                            seg.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                s.comments[line].push_str(&seg);
                s.comments[line].push(' ');
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if chars
                    .get(i + 1)
                    .is_some_and(|&c2| is_ident_start(c2) && chars.get(i + 2) != Some(&'\''))
                {
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                } else {
                    i += 1; // opening quote
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\n') {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                }
            }
            c if is_ident_start(c) => {
                // Raw strings / raw identifiers / byte strings first.
                if (c == 'r' || c == 'b') && matches!(chars.get(i + 1), Some(&'"') | Some(&'#')) {
                    if let Some(ni) = skip_raw_or_byte(&chars, i, &mut line) {
                        i = ni;
                        continue;
                    }
                }
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                push(&mut s, chars[start..i].iter().collect(), line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len()
                    && (is_ident_continue(chars[i])
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())))
                {
                    i += 1;
                }
                push(&mut s, chars[start..i].iter().collect(), line);
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                push(&mut s, "::".to_string(), line);
                i += 2;
            }
            _ => {
                push(&mut s, c.to_string(), line);
                i += 1;
            }
        }
    }
    s
}

/// Skip a `"…"` literal starting at `chars[i]`; returns the index past
/// the closing quote and bumps `line` across embedded newlines.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < chars.len() && chars[i] != '"' {
        if chars[i] == '\\' {
            i += 1;
        }
        if chars.get(i) == Some(&'\n') {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` etc. starting at the `r` /
/// `b`.  Returns `None` when the prefix is actually an identifier
/// (e.g. a raw identifier `r#match` — consumed as an ident upstream).
fn skip_raw_or_byte(chars: &[char], start: usize, line: &mut usize) -> Option<usize> {
    let mut i = start + 1;
    if chars.get(i) == Some(&'r') {
        i += 1; // `br` prefix
    }
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None; // raw identifier or plain ident starting with r/b
    }
    if hashes == 0 && chars[start..i].contains(&'#') {
        return None;
    }
    if hashes == 0 {
        return Some(skip_string(chars, i, line));
    }
    i += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        }
        if chars[i] == '"' && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(i)
}

/// An inline exception: `// lint:allow(<rule>): <reason>`.
struct Pragmas {
    /// `(line, rule)` pairs suppressed by a well-formed pragma.
    allowed: BTreeSet<(usize, &'static str)>,
    /// Malformed pragmas (unknown rule / missing reason).
    bad: Vec<(usize, String)>,
}

fn collect_pragmas(s: &FileScan) -> Pragmas {
    let mut p = Pragmas {
        allowed: BTreeSet::new(),
        bad: Vec::new(),
    };
    for line in 1..s.comments.len() {
        let text = &s.comments[line];
        // Doc comments are prose (they may *quote* the pragma
        // template); only plain `//` / `/* */` comments carry pragmas.
        if text.trim_start().starts_with("//!") || text.trim_start().starts_with("///") {
            continue;
        }
        let Some(pos) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            p.bad.push((line, "unterminated lint:allow pragma".into()));
            continue;
        };
        let rule = rest[..close].trim();
        let Some(known) = RULE_NAMES.iter().find(|&&r| r == rule) else {
            p.bad
                .push((line, format!("unknown rule `{rule}` in lint:allow")));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            p.bad.push((
                line,
                format!("lint:allow({rule}) requires a reason: `// lint:allow({rule}): <why>`"),
            ));
            continue;
        }
        // A trailing pragma covers its own line; a whole-line pragma
        // covers the next line that carries code.
        let covered = if s.code_on_line[line] {
            line
        } else {
            match (line + 1..s.code_on_line.len()).find(|&l| s.code_on_line[l]) {
                Some(l) => l,
                None => continue, // pragma at EOF: nothing to cover
            }
        };
        p.allowed.insert((covered, known));
    }
    p
}

/// Lines covered by a `#[cfg(test)]` item (the attribute through the
/// item's closing brace or semicolon), 1-indexed.
fn cfg_test_lines(s: &FileScan) -> Vec<bool> {
    let mut exempt = vec![false; s.comments.len()];
    let toks = &s.toks;
    let mut i = 0usize;
    while i + 4 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && {
                // Scan the attribute's argument list for the `test` ident.
                let mut j = i + 4;
                let mut depth = 1usize;
                let mut found = false;
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        "test" => found = true,
                        _ => {}
                    }
                    j += 1;
                }
                found
            };
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Walk past this attribute's closing `]`, any further
        // attributes, then the item: either `… ;` or `… { … }`.
        let mut j = i + 2;
        let mut bracket = 1usize; // we are inside `#[`
        while j < toks.len() && bracket > 0 {
            match toks[j].text.as_str() {
                "[" => bracket += 1,
                "]" => bracket -= 1,
                _ => {}
            }
            j += 1;
        }
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0usize;
            loop {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
                if depth == 0 && toks[j - 1].text == "]" || j >= toks.len() {
                    break;
                }
            }
        }
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        j += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for l in start_line..=end_line.min(exempt.len() - 1) {
            exempt[l] = true;
        }
        i = j;
    }
    exempt
}

/// `true` when any path component marks test/bench/example code.
fn is_test_path(rel: &Path) -> bool {
    rel.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples") | Some("fixtures")
        )
    })
}

/// Paths where wall-clock reads are legitimate: the bench harness, the
/// offline criterion shim, examples and test code.
fn wallclock_allowed(rel: &Path) -> bool {
    is_test_path(rel) || rel.starts_with("crates/bench") || rel.starts_with("crates/shims")
}

/// The sanctioned home of `std::env::var`: the defensive parse helpers
/// (`num_threads` / `backend` / `num_shards` / `parse_threads` /
/// `parse_pool` / `parse_shards`).
fn env_sanctioned(rel: &Path) -> bool {
    rel == Path::new("crates/par/src/lib.rs")
}

/// Methods whose call on a hash container observes iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Identifiers bound to a `HashMap`/`HashSet` in this file: from typed
/// bindings/fields/params (`name: [&mut] HashMap<…>`) and constructor
/// bindings (`let [mut] name = HashMap::new()` etc.).
fn hash_bound_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].text != "HashMap" && toks[i].text != "HashSet" {
            continue;
        }
        // Walk back over a path prefix (`std :: collections ::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" {
            j -= 2;
        }
        // Typed position: `name : [& mut] [path] Hash…`.
        let mut k = j;
        while k >= 1 && matches!(toks[k - 1].text.as_str(), "&" | "mut") {
            k -= 1;
        }
        if k >= 2 && toks[k - 1].text == ":" {
            let name = &toks[k - 2].text;
            if name.chars().next().is_some_and(is_ident_start) {
                names.insert(name.clone());
            }
            continue;
        }
        // Constructor position: `let [mut] name = [path] Hash… :: …`.
        if j >= 3 && toks[j - 1].text == "=" {
            let name = &toks[j - 2].text;
            let kw = &toks[j - 3].text;
            if (kw == "let" || kw == "mut") && name.chars().next().is_some_and(is_ident_start) {
                names.insert(name.clone());
            }
        }
    }
    names
}

/// Lint one file's source.  `rel` is the path relative to the
/// workspace root — it decides which per-path policies apply.
pub fn lint_source(rel: &Path, source: &str) -> Vec<Violation> {
    let s = scan(source);
    let pragmas = collect_pragmas(&s);
    let test_lines = cfg_test_lines(&s);
    let test_path = is_test_path(rel);
    let mut out: Vec<Violation> = Vec::new();
    for (line, msg) in &pragmas.bad {
        out.push(Violation {
            file: rel.to_path_buf(),
            line: *line,
            rule: "bad-pragma",
            message: msg.clone(),
        });
    }
    let exempt = |line: usize| test_path || test_lines.get(line).copied().unwrap_or(false);
    let allowed = |line: usize, rule: &'static str| pragmas.allowed.contains(&(line, rule));
    let mut push = |line: usize, rule: &'static str, message: String| {
        if !allowed(line, rule) {
            out.push(Violation {
                file: rel.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    // Rule 1: unsafe-needs-safety-comment.  Applies everywhere, test
    // code included — unsafe is unsafe.
    let has_marker = |line: usize| {
        let t = &s.comments[line];
        t.contains("SAFETY:") || t.contains("# Safety")
    };
    for t in &s.toks {
        if t.text != "unsafe" {
            continue;
        }
        let mut ok = has_marker(t.line);
        // Walk up through the contiguous comment/attribute block.
        let mut l = t.line;
        while !ok && l > 1 {
            l -= 1;
            let comment_only = !s.code_on_line[l] && !s.comments[l].trim().is_empty();
            let attr_line = s.code_on_line[l]
                && s.toks
                    .iter()
                    .find(|tk| tk.line == l)
                    .is_some_and(|tk| tk.text == "#");
            if !(comment_only || attr_line) {
                break;
            }
            ok = has_marker(l);
        }
        if !ok {
            push(
                t.line,
                "unsafe-needs-safety-comment",
                "`unsafe` without a preceding `// SAFETY:` comment stating its invariant".into(),
            );
        }
    }

    // Rule 2: no-unordered-iteration.
    let hash_names = hash_bound_idents(&s.toks);
    for (i, t) in s.toks.iter().enumerate() {
        if !hash_names.contains(&t.text) || exempt(t.line) {
            continue;
        }
        if s.toks.get(i + 1).is_some_and(|n| n.text == ".")
            && s.toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && s.toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            let method = &s.toks[i + 2].text;
            push(
                s.toks[i + 2].line,
                "no-unordered-iteration",
                format!(
                    "`{}.{}()` observes randomized hash order; use a BTree collection, sort \
                     first, or justify with a pragma",
                    t.text, method
                ),
            );
        }
    }
    // `for … in <expr containing a bare hash-bound name>`.
    let mut i = 0usize;
    while i < s.toks.len() {
        if s.toks[i].text != "for" {
            i += 1;
            continue;
        }
        let Some(in_pos) = (i + 1..s.toks.len().min(i + 64)).find(|&j| s.toks[j].text == "in")
        else {
            i += 1;
            continue;
        };
        let mut j = in_pos + 1;
        while j < s.toks.len() && s.toks[j].text != "{" && s.toks[j].text != ";" {
            let t = &s.toks[j];
            if hash_names.contains(&t.text)
                && !exempt(t.line)
                && !matches!(
                    s.toks.get(j + 1).map(|n| n.text.as_str()),
                    Some(".") | Some("(") | Some("::")
                )
            {
                push(
                    t.line,
                    "no-unordered-iteration",
                    format!(
                        "`for … in {}` iterates randomized hash order; use a BTree collection, \
                         sort first, or justify with a pragma",
                        t.text
                    ),
                );
            }
            j += 1;
        }
        i = j;
    }

    // Rule 3: no-env-outside-config.
    if !env_sanctioned(rel) {
        for (i, t) in s.toks.iter().enumerate() {
            if t.text == "env"
                && s.toks.get(i + 1).is_some_and(|n| n.text == "::")
                && s.toks
                    .get(i + 2)
                    .is_some_and(|m| matches!(m.text.as_str(), "var" | "var_os" | "vars"))
                && !exempt(t.line)
            {
                push(
                    t.line,
                    "no-env-outside-config",
                    format!(
                        "`env::{}` outside the sanctioned parse helpers (crates/par/src/lib.rs); \
                         route configuration through them or justify with a pragma",
                        s.toks[i + 2].text
                    ),
                );
            }
        }
    }

    // Rule 4: no-wallclock-in-decisions.
    if !wallclock_allowed(rel) {
        for t in &s.toks {
            if (t.text == "Instant" || t.text == "SystemTime") && !exempt(t.line) {
                push(
                    t.line,
                    "no-wallclock-in-decisions",
                    format!(
                        "`{}` in a crate whose outputs are Eq-compared; wall-clock reads belong \
                         in the bench harness, or justify with a pragma",
                        t.text
                    ),
                );
            }
        }
    }

    // Rule 5: catch-unwind-needs-containment-comment.  A production
    // `catch_unwind` is a policy decision — what state does the caught
    // unwind leave behind, and who recovers it?  That policy must be
    // written down where it lives.  Test code is exempt (tests use
    // catch_unwind to *observe* panics), and so are `use` declarations
    // (importing the symbol is not catching anything).
    let has_containment = |line: usize| s.comments[line].contains("CONTAINMENT:");
    let mut in_use = false;
    for t in &s.toks {
        match t.text.as_str() {
            "use" => in_use = true,
            ";" => in_use = false,
            _ => {}
        }
        if t.text != "catch_unwind" || in_use || exempt(t.line) {
            continue;
        }
        let mut ok = has_containment(t.line);
        // Walk up through the contiguous comment/attribute block,
        // exactly like the SAFETY rule.
        let mut l = t.line;
        while !ok && l > 1 {
            l -= 1;
            let comment_only = !s.code_on_line[l] && !s.comments[l].trim().is_empty();
            let attr_line = s.code_on_line[l]
                && s.toks
                    .iter()
                    .find(|tk| tk.line == l)
                    .is_some_and(|tk| tk.text == "#");
            if !(comment_only || attr_line) {
                break;
            }
            ok = has_containment(l);
        }
        if !ok {
            push(
                t.line,
                "catch-unwind-needs-containment-comment",
                "`catch_unwind` without a preceding `// CONTAINMENT:` comment naming the \
                 recovery policy (what state the unwind leaves, who restores it)"
                    .into(),
            );
        }
    }

    out.sort();
    out
}

/// Directories the workspace walk never descends into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

/// Recursively lint every `.rs` file under `root`.  Returns the sorted
/// violation list and the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let source = std::fs::read_to_string(path)?;
        out.extend(lint_source(rel, &source));
    }
    out.sort();
    Ok((out, files.len()))
}

/// Ascend from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the root the binary lints by default.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

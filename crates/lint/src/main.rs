//! CLI for the workspace determinism & unsafe-discipline analyzer.
//!
//! ```text
//! spmap-lint [ROOT]
//! ```
//!
//! With no argument the workspace root is found by ascending from the
//! current directory to the first `Cargo.toml` with a `[workspace]`
//! section.  Violations print as `file:line: rule: message`; the exit
//! code is non-zero when any are found, so `cargo run -p spmap-lint`
//! is the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(flag) if flag == "--help" || flag == "-h" => {
            println!("usage: spmap-lint [ROOT]");
            println!("rules: {}", spmap_lint::RULE_NAMES.join(", "));
            println!("pragma: // lint:allow(<rule>): <reason>");
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match spmap_lint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("spmap-lint: no workspace root above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let (violations, files) = match spmap_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spmap-lint: {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("spmap-lint: clean ({files} files scanned)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "spmap-lint: {} violation(s) across {files} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

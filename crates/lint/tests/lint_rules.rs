//! Fixture corpus for every rule: one flagged, one clean and one
//! pragma-suppressed case each.  Fixtures live under `tests/fixtures/`
//! (a directory the workspace walk skips) and are linted under a
//! synthetic non-test, non-bench relative path so the path policies
//! apply as they would to real decision-path code.

use std::path::Path;

use spmap_lint::{lint_source, Violation};

fn lint_fixture(name: &str) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture exists");
    // A decision-path location: no test/bench/example exemption.
    lint_source(Path::new("crates/fixture/src/lib.rs"), &source)
}

fn rules(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let vs = lint_fixture("unsafe_flagged.rs");
    assert_eq!(rules(&vs), ["unsafe-needs-safety-comment"], "{vs:#?}");
    assert_eq!(vs[0].line, 4);
}

#[test]
fn unsafe_with_safety_comment_or_doc_section_is_clean() {
    let vs = lint_fixture("unsafe_clean.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn unsafe_pragma_suppresses_with_reason() {
    let vs = lint_fixture("unsafe_pragma.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn hash_iteration_is_flagged() {
    let vs = lint_fixture("unordered_flagged.rs");
    assert_eq!(
        rules(&vs),
        [
            "no-unordered-iteration", // for (_, v) in m
            "no-unordered-iteration", // m.keys()
            "no-unordered-iteration", // s.drain()
        ],
        "{vs:#?}"
    );
    assert_eq!(vs[0].line, 5);
}

#[test]
fn ordered_iteration_and_point_lookups_are_clean() {
    let vs = lint_fixture("unordered_clean.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn hash_iteration_pragma_suppresses_with_reason() {
    let vs = lint_fixture("unordered_pragma.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn env_read_outside_config_is_flagged() {
    let vs = lint_fixture("env_flagged.rs");
    assert_eq!(rules(&vs), ["no-env-outside-config"], "{vs:#?}");
    assert_eq!(vs[0].line, 2);
}

#[test]
fn env_free_decision_code_and_test_env_are_clean() {
    let vs = lint_fixture("env_clean.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn env_pragma_suppresses_with_reason() {
    let vs = lint_fixture("env_pragma.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn wallclock_in_decision_crate_is_flagged() {
    let vs = lint_fixture("wallclock_flagged.rs");
    assert_eq!(
        rules(&vs),
        ["no-wallclock-in-decisions", "no-wallclock-in-decisions"],
        "{vs:#?}"
    );
    assert_eq!(vs[0].line, 1, "the use declaration itself is flagged");
}

#[test]
fn wallclock_in_test_code_is_clean() {
    let vs = lint_fixture("wallclock_clean.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn wallclock_pragma_suppresses_with_reason() {
    let vs = lint_fixture("wallclock_pragma.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn catch_unwind_without_containment_comment_is_flagged() {
    let vs = lint_fixture("containment_flagged.rs");
    assert_eq!(
        rules(&vs),
        ["catch-unwind-needs-containment-comment"],
        "{vs:#?}"
    );
    assert_eq!(vs[0].line, 3);
}

#[test]
fn catch_unwind_with_containment_comment_is_clean() {
    // Also proves the `use std::panic::catch_unwind;` import line is
    // not treated as a catch site.
    let vs = lint_fixture("containment_clean.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn catch_unwind_pragma_suppresses_with_reason() {
    let vs = lint_fixture("containment_pragma.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn catch_unwind_in_test_code_is_exempt() {
    let source = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/containment_flagged.rs"),
    )
    .unwrap();
    // Test paths observe panics freely.
    let vs = lint_source(Path::new("tests/chaos.rs"), &source);
    assert!(vs.is_empty(), "{vs:#?}");
    // So do `#[cfg(test)]` items in production files.
    let wrapped = format!("#[cfg(test)]\nmod tests {{\n{source}\n}}\n");
    let vs = lint_source(Path::new("crates/fixture/src/lib.rs"), &wrapped);
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn sanctioned_env_file_is_exempt_by_path() {
    let source = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/env_flagged.rs"),
    )
    .unwrap();
    let vs = lint_source(Path::new("crates/par/src/lib.rs"), &source);
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn bench_paths_are_exempt_from_wallclock() {
    let source = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wallclock_flagged.rs"),
    )
    .unwrap();
    let vs = lint_source(Path::new("crates/bench/src/algos.rs"), &source);
    assert!(vs.is_empty(), "{vs:#?}");
    let vs = lint_source(Path::new("examples/quickstart.rs"), &source);
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn pragma_without_reason_is_itself_a_violation() {
    let source = "pub fn f(x: u32) -> u32 {\n    // lint:allow(no-env-outside-config)\n    x\n}\n";
    let vs = lint_source(Path::new("crates/fixture/src/lib.rs"), source);
    assert_eq!(rules(&vs), ["bad-pragma"], "{vs:#?}");
}

#[test]
fn pragma_with_unknown_rule_is_a_violation() {
    let source = "pub fn f(x: u32) -> u32 {\n    // lint:allow(no-such-rule): whatever\n    x\n}\n";
    let vs = lint_source(Path::new("crates/fixture/src/lib.rs"), source);
    assert_eq!(rules(&vs), ["bad-pragma"], "{vs:#?}");
}

#[test]
fn pragma_for_the_wrong_rule_does_not_suppress() {
    let source = "pub fn f() -> usize {\n    // lint:allow(no-wallclock-in-decisions): wrong rule.\n    std::env::var(\"X\").map(|s| s.len()).unwrap_or(0)\n}\n";
    let vs = lint_source(Path::new("crates/fixture/src/lib.rs"), source);
    assert_eq!(rules(&vs), ["no-env-outside-config"], "{vs:#?}");
}

#[test]
fn tokens_inside_strings_and_comments_are_ignored() {
    let source = "// This mentions unsafe, HashMap.iter() and Instant freely.\npub fn f() -> &'static str {\n    \"unsafe { env::var(\\\"X\\\") } Instant::now()\"\n}\n";
    let vs = lint_source(Path::new("crates/fixture/src/lib.rs"), source);
    assert!(vs.is_empty(), "{vs:#?}");
}

//! The workspace self-check: `spmap-lint` must exit clean on this
//! repository.  Running inside `cargo test` makes the lint a tier-1
//! gate in every CI cell, not just the dedicated lint step.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists() && root.join("crates").is_dir(),
        "workspace root detection broke: {}",
        root.display()
    );
    let (violations, files) = spmap_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        files > 50,
        "suspiciously few files scanned ({files}) — walker broke?"
    );
    assert!(
        violations.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Configuration arrives through the sanctioned parse helpers, never
/// read ambiently here.
pub fn threads(configured: Option<usize>) -> usize {
    configured.unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_set_and_read_env() {
        std::env::set_var("SPMAP_FIXTURE", "1");
        assert_eq!(std::env::var("SPMAP_FIXTURE").as_deref(), Ok("1"));
    }
}

use std::collections::{BTreeMap, HashMap};

/// Point lookups never observe iteration order.
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

/// BTree iteration is ordered — always fine.
pub fn sum_values(ordered: &BTreeMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_, v) in ordered {
        acc += v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        let mut s = HashSet::new();
        s.insert(1u32);
        let xs: Vec<u32> = s.iter().copied().collect();
        assert_eq!(xs.len(), 1);
    }
}

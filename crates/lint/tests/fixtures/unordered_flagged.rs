use std::collections::{HashMap, HashSet};

pub fn sum_values(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_, v) in m {
        acc += v;
    }
    acc
}

pub fn collect_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn drain_set(s: &mut HashSet<u32>) -> Vec<u32> {
    s.drain().collect()
}

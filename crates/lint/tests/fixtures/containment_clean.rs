use std::panic::catch_unwind;

/// Convert a panic into `false` at a documented boundary.
pub fn run(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    // CONTAINMENT: the closure owns all state it touches; a caught
    // unwind leaves nothing behind and the caller sees `false`.
    catch_unwind(f).is_ok()
}

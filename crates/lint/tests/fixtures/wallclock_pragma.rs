// lint:allow(no-wallclock-in-decisions): deadline support is an explicit, documented API.
use std::time::Instant;

pub fn expired(deadline: Option<Instant>) -> bool { // lint:allow(no-wallclock-in-decisions): deadline support is an explicit, documented API.
    // lint:allow(no-wallclock-in-decisions): deadline support is an explicit, documented API.
    deadline.is_some_and(|d| Instant::now() > d)
}

pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(unsafe-needs-safety-comment): fixture exercising the pragma path.
    unsafe { *xs.as_ptr() }
}

// A fixture, not workspace code: an `unsafe` block with no SAFETY
// discipline at all must be flagged.
pub fn first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}

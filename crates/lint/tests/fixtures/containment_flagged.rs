/// Swallow panics with no written recovery policy.
pub fn run(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

pub fn threads() -> usize {
    std::env::var("SPMAP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

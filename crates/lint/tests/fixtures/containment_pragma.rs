pub fn run(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    // lint:allow(catch-unwind-needs-containment-comment): fixture exercising the pragma path.
    std::panic::catch_unwind(f).is_ok()
}

/// Dereference the first element.
///
/// # Safety
///
/// `xs` must be non-empty.
pub unsafe fn first_unchecked(xs: &[u32]) -> u32 {
    // SAFETY: non-emptiness is the function's own contract.
    unsafe { *xs.as_ptr() }
}

pub fn results_dir() -> String {
    // lint:allow(no-env-outside-config): output-directory plumbing, never read on decision paths.
    std::env::var("SPMAP_RESULTS").unwrap_or_else(|_| "results".to_string())
}

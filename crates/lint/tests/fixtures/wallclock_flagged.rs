use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

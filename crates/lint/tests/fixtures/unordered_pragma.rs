use std::collections::HashMap;

pub fn survivors(m: &mut HashMap<u32, u32>, cutoff: u32) -> usize {
    // lint:allow(no-unordered-iteration): retain by a pure value predicate — order-independent.
    m.retain(|_, &mut v| v > cutoff);
    m.len()
}

pub fn max_value(m: &HashMap<u32, u32>) -> Option<u32> {
    m.values().copied().max() // lint:allow(no-unordered-iteration): max is order-independent.
}

/// Decision code measures work in simulated time and stepped
/// positions, never the wall clock.
pub fn simulated_makespan(spans: &[f64]) -> f64 {
    spans.iter().fold(0.0, |a, &b| a + b)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_may_time_itself() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
